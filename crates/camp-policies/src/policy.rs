//! The common interface every eviction policy in this workspace implements.
//!
//! The paper's simulator (§3) drives each algorithm the same way: a request
//! generator references a key; on a miss it inserts the missing pair, which
//! may evict residents. [`EvictionPolicy::reference`] captures exactly that
//! interaction, so CAMP, LRU, GDS, Pooled-LRU and the related-work policies
//! are interchangeable inside the simulator, the KVS server, the tests, and
//! the benchmark harness.
//!
//! The trait is generic over the key type. The simulator uses the default
//! `u64` trace keys; the KVS server drives the *same* policy implementations
//! over `Box<[u8]>` protocol keys. Two extra methods serve the server's
//! slab store, where memory pressure (not the policy's byte budget) decides
//! *when* to evict: [`EvictionPolicy::victim`] exposes the next eviction
//! candidate without mutating, and [`EvictionPolicy::touch`] applies the
//! hit path of `reference` on its own (the store's `get`).

use camp_core::{Camp, InsertOutcome};

/// Keys an eviction policy can manage: hashable, clonable (for eviction
/// reporting), and debuggable. Blanket-implemented; `u64` trace keys and
/// the server's `Box<[u8]>` protocol keys both qualify.
pub trait CacheKey: Eq + std::hash::Hash + Clone + std::fmt::Debug {}

impl<T: Eq + std::hash::Hash + Clone + std::fmt::Debug> CacheKey for T {}

/// One key reference as it appears in a trace row: the key, the byte size of
/// its value, and the cost to (re)compute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheRequest<K = u64> {
    /// The referenced key.
    pub key: K,
    /// Value size in bytes (positive).
    pub size: u64,
    /// Cost of computing the pair (non-negative integer, as in the paper).
    pub cost: u64,
}

impl<K> CacheRequest<K> {
    /// Convenience constructor.
    #[must_use]
    pub fn new(key: K, size: u64, cost: u64) -> Self {
        CacheRequest { key, size, cost }
    }
}

/// What a [`EvictionPolicy::reference`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The key was resident: a cache hit.
    Hit,
    /// The key was absent and has been inserted (possibly evicting others).
    MissInserted,
    /// The key was absent and was *not* admitted (too large, or declined by
    /// an admission policy).
    MissBypassed,
}

impl AccessOutcome {
    /// Whether this outcome is a miss (inserted or bypassed).
    #[must_use]
    pub fn is_miss(self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// A cache eviction policy driven by a stream of key references.
///
/// Implementations manage a fixed byte budget. `reference` performs the
/// paper's get-then-insert-on-miss cycle in one call and reports evicted
/// keys through the caller-supplied buffer (so hot loops can reuse one
/// allocation). `touch` and `victim` split that cycle apart for callers —
/// like the slab store — that decide admission and eviction timing
/// themselves.
pub trait EvictionPolicy<K: CacheKey = u64> {
    /// Short, stable, human-readable policy name (e.g. `"camp(p=5)"`).
    fn name(&self) -> String;

    /// The byte capacity this policy manages.
    fn capacity(&self) -> u64;

    /// Bytes currently occupied.
    fn used_bytes(&self) -> u64;

    /// Number of resident keys.
    fn len(&self) -> usize;

    /// Whether no keys are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` is resident, without updating recency.
    fn contains(&self, key: &K) -> bool;

    /// References `req.key`: a hit updates recency metadata; a miss inserts
    /// the pair, appending any evicted keys to `evicted`.
    fn reference(&mut self, req: CacheRequest<K>, evicted: &mut Vec<K>) -> AccessOutcome;

    /// Applies the hit path of [`EvictionPolicy::reference`] alone: updates
    /// recency/frequency metadata for a resident `key`. Returns whether the
    /// key was resident (a miss records nothing).
    fn touch(&mut self, key: &K) -> bool;

    /// The key this policy would evict next, without evicting it. `None`
    /// when empty.
    fn victim(&self) -> Option<K>;

    /// Removes `key` if resident. Returns whether it was.
    fn remove(&mut self, key: &K) -> bool;

    /// Number of internal queues/pools, for policies where that is a
    /// meaningful quantity (CAMP: non-empty LRU queues; Pooled-LRU: pools).
    fn queue_count(&self) -> Option<usize> {
        None
    }

    /// Heap nodes visited so far, for heap-based policies (the Figure 4
    /// metric).
    fn heap_node_visits(&self) -> Option<u64> {
        None
    }

    /// Structural heap operations performed so far.
    fn heap_update_ops(&self) -> Option<u64> {
        None
    }

    /// Resets instrumentation counters (not the cache contents).
    fn reset_instrumentation(&mut self) {}
}

/// [`EvictionPolicy`] for the real thing: a [`Camp`] cache over any key
/// type.
///
/// # Examples
///
/// ```
/// use camp_core::{Camp, Precision};
/// use camp_policies::{CacheRequest, EvictionPolicy};
///
/// let mut camp: Camp<u64, ()> = Camp::new(1000, Precision::Bits(5));
/// let mut evicted = Vec::new();
/// let outcome = camp.reference(CacheRequest::new(1, 100, 5), &mut evicted);
/// assert!(outcome.is_miss());
/// assert!(EvictionPolicy::contains(&camp, &1));
/// ```
impl<K: CacheKey> EvictionPolicy<K> for Camp<K, ()> {
    fn name(&self) -> String {
        format!("camp(p={})", self.precision())
    }

    fn capacity(&self) -> u64 {
        Camp::capacity(self)
    }

    fn used_bytes(&self) -> u64 {
        Camp::used_bytes(self)
    }

    fn len(&self) -> usize {
        Camp::len(self)
    }

    fn contains(&self, key: &K) -> bool {
        Camp::contains(self, key)
    }

    fn reference(&mut self, req: CacheRequest<K>, evicted: &mut Vec<K>) -> AccessOutcome {
        if self.get(&req.key).is_some() {
            return AccessOutcome::Hit;
        }
        let mut pairs = Vec::new();
        let outcome = self.insert_with_evictions(req.key, (), req.size, req.cost, &mut pairs);
        evicted.extend(pairs.into_iter().map(|(k, ())| k));
        match outcome {
            InsertOutcome::RejectedTooLarge => AccessOutcome::MissBypassed,
            _ => AccessOutcome::MissInserted,
        }
    }

    fn touch(&mut self, key: &K) -> bool {
        self.get(key).is_some()
    }

    fn victim(&self) -> Option<K> {
        Camp::victim(self).cloned()
    }

    fn remove(&mut self, key: &K) -> bool {
        Camp::remove(self, key).is_some()
    }

    fn queue_count(&self) -> Option<usize> {
        Some(Camp::queue_count(self))
    }

    fn heap_node_visits(&self) -> Option<u64> {
        Some(Camp::heap_node_visits(self))
    }

    fn heap_update_ops(&self) -> Option<u64> {
        Some(Camp::heap_update_ops(self))
    }

    fn reset_instrumentation(&mut self) {
        Camp::reset_instrumentation(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_core::Precision;

    #[test]
    fn camp_implements_the_trait() {
        let mut camp: Camp<u64, ()> = Camp::new(100, Precision::Bits(5));
        let mut evicted = Vec::new();
        assert_eq!(
            camp.reference(CacheRequest::new(1, 60, 10), &mut evicted),
            AccessOutcome::MissInserted
        );
        assert_eq!(
            camp.reference(CacheRequest::new(1, 60, 10), &mut evicted),
            AccessOutcome::Hit
        );
        assert_eq!(
            camp.reference(CacheRequest::new(2, 60, 10), &mut evicted),
            AccessOutcome::MissInserted
        );
        assert_eq!(evicted, vec![1]);
        assert_eq!(
            camp.reference(CacheRequest::new(3, 101, 10), &mut evicted),
            AccessOutcome::MissBypassed
        );
        assert!(EvictionPolicy::remove(&mut camp, &2));
        assert!(!EvictionPolicy::remove(&mut camp, &2));
        assert_eq!(EvictionPolicy::len(&camp), 0);
        assert!(EvictionPolicy::name(&camp).starts_with("camp"));
    }

    #[test]
    fn camp_over_byte_keys_implements_the_trait() {
        let mut camp: Camp<Box<[u8]>, ()> = Camp::new(100, Precision::Bits(5));
        let key: Box<[u8]> = Box::from(&b"user:1"[..]);
        let mut evicted: Vec<Box<[u8]>> = Vec::new();
        assert_eq!(
            camp.reference(CacheRequest::new(key.clone(), 60, 10), &mut evicted),
            AccessOutcome::MissInserted
        );
        assert!(EvictionPolicy::contains(&camp, &key));
        assert!(EvictionPolicy::touch(&mut camp, &key));
        assert_eq!(EvictionPolicy::victim(&camp), Some(key.clone()));
        assert!(EvictionPolicy::remove(&mut camp, &key));
        assert!(EvictionPolicy::is_empty(&camp));
    }

    #[test]
    fn touch_and_victim_follow_recency() {
        let mut camp: Camp<u64, ()> = Camp::new(1000, Precision::Bits(5));
        let mut evicted = Vec::new();
        camp.reference(CacheRequest::new(1, 10, 5), &mut evicted);
        camp.reference(CacheRequest::new(2, 10, 5), &mut evicted);
        // Same queue (same ratio); 1 is the LRU victim until touched.
        assert_eq!(EvictionPolicy::victim(&camp), Some(1));
        assert!(EvictionPolicy::touch(&mut camp, &1));
        assert_eq!(EvictionPolicy::victim(&camp), Some(2));
        assert!(!EvictionPolicy::touch(&mut camp, &99));
    }

    #[test]
    fn outcome_helpers() {
        assert!(!AccessOutcome::Hit.is_miss());
        assert!(AccessOutcome::MissInserted.is_miss());
        assert!(AccessOutcome::MissBypassed.is_miss());
    }
}
