//! ARC — the Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//!
//! The self-tuning recency/frequency policy from the paper's related work
//! (§5). ARC splits residents into a recency list `T1` (seen once recently)
//! and a frequency list `T2` (seen at least twice), shadowed by ghost lists
//! `B1`/`B2` that remember recently evicted keys. Hits on the ghosts move
//! the adaptation target `p` — the byte budget of `T1` — toward whichever
//! list is proving valuable.
//!
//! The original operates on fixed-size pages; the CAMP setting has
//! variable-size values, so this implementation generalizes all list budgets
//! and the parameter `p` to bytes. The adaptation deltas scale with the
//! request's size, the byte analogue of the original's `max(1, |B2|/|B1|)`
//! page deltas. Like LRU and LRU-K — and unlike CAMP — ARC is cost-blind,
//! which is why the paper positions it as complementary rather than
//! competing.

use std::collections::{HashMap, VecDeque};

use camp_core::arena::{Arena, EntryId};
use camp_core::lru_list::{Linked, Links, LruList};

use crate::policy::{
    key_hash, AccessOutcome, CacheKey, CacheRequest, EvictionPolicy, PolicyEvent, PolicyEventKind,
    SharedTraceSink,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    T1,
    T2,
}

impl Region {
    /// Queue index reported in trace events: 0 = recency (T1), 1 = frequency (T2).
    fn queue_index(self) -> u32 {
        match self {
            Region::T1 => 0,
            Region::T2 => 1,
        }
    }
}

#[derive(Debug)]
struct Resident {
    size: u64,
    /// Retained for trace events only; ARC ignores cost when evicting.
    cost: u64,
    region: Region,
    id: EntryId,
}

#[derive(Debug)]
struct Node<K> {
    key: K,
    links: Links,
}

impl<K> Linked for Node<K> {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// A ghost list: remembers keys and sizes of recently evicted entries in
/// LRU order, with O(1) membership and lazy mid-list deletion.
#[derive(Debug)]
struct GhostList<K> {
    map: HashMap<K, (u64, u64)>, // key -> (size, stamp)
    order: VecDeque<(K, u64)>,   // (key, stamp)
    bytes: u64,
    next_stamp: u64,
}

impl<K: CacheKey> Default for GhostList<K> {
    fn default() -> Self {
        GhostList {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            next_stamp: 0,
        }
    }
}

impl<K: CacheKey> GhostList<K> {
    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn push_mru(&mut self, key: K, size: u64) {
        self.remove(&key);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.map.insert(key.clone(), (size, stamp));
        self.order.push_back((key, stamp));
        self.bytes += size;
    }

    fn remove(&mut self, key: &K) -> Option<u64> {
        let (size, _) = self.map.remove(key)?;
        self.bytes -= size;
        Some(size)
    }

    fn pop_lru(&mut self) -> Option<K> {
        while let Some((key, stamp)) = self.order.pop_front() {
            if let Some(&(size, live_stamp)) = self.map.get(&key) {
                if live_stamp == stamp {
                    self.map.remove(&key);
                    self.bytes -= size;
                    return Some(key);
                }
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The ARC replacement policy, generalized to byte sizes.
///
/// # Examples
///
/// ```
/// use camp_policies::{Arc, CacheRequest, EvictionPolicy};
///
/// let mut cache = Arc::new(100);
/// let mut evicted = Vec::new();
/// cache.reference(CacheRequest::new(1, 10, 0), &mut evicted);
/// cache.reference(CacheRequest::new(1, 10, 0), &mut evicted); // promotes to T2
/// assert!(cache.contains(&1));
/// ```
#[derive(Debug)]
pub struct Arc<K = u64> {
    capacity: u64,
    p: u64,
    used: u64,
    t1_bytes: u64,
    t2_bytes: u64,
    residents: HashMap<K, Resident>,
    t1: LruList,
    t2: LruList,
    arena: Arena<Node<K>>,
    b1: GhostList<K>,
    b2: GhostList<K>,
    sink: Option<SharedTraceSink>,
}

impl<K: CacheKey> Arc<K> {
    /// Creates an ARC cache with the given byte capacity.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Arc {
            capacity,
            p: 0,
            used: 0,
            t1_bytes: 0,
            t2_bytes: 0,
            residents: HashMap::new(),
            t1: LruList::new(),
            t2: LruList::new(),
            arena: Arena::new(),
            b1: GhostList::default(),
            b2: GhostList::default(),
            sink: None,
        }
    }

    /// Builds the trace event for a resident (queue 0 = T1, 1 = T2).
    fn event_for(kind: PolicyEventKind, key: &K, resident: &Resident) -> PolicyEvent {
        PolicyEvent {
            kind,
            key_hash: key_hash(key),
            size: resident.size,
            cost: resident.cost,
            ratio: 0,
            queue: resident.region.queue_index(),
            l_value: 0,
        }
    }

    /// The current adaptation target: the byte budget ARC aims to give the
    /// recency list `T1`.
    #[must_use]
    pub fn p_target(&self) -> u64 {
        self.p
    }

    /// Resident bytes in `T1` and `T2` respectively.
    #[must_use]
    pub fn region_bytes(&self) -> (u64, u64) {
        (self.t1_bytes, self.t2_bytes)
    }

    fn push_node(arena: &mut Arena<Node<K>>, list: &mut LruList, key: K) -> EntryId {
        let id = arena.insert(Node {
            key,
            links: Links::new(),
        });
        list.push_back(arena, id);
        id
    }

    /// Whether the next `REPLACE` takes from `T1` (else `T2`).
    fn replace_from_t1(&self, in_b2: bool) -> bool {
        let from_t1 = !self.t1.is_empty()
            && (self.t1_bytes > self.p || (in_b2 && self.t1_bytes >= self.p && self.t1_bytes > 0));
        from_t1 || self.t2.is_empty()
    }

    /// The ARC `REPLACE` subroutine, generalized to bytes: evict one entry
    /// from `T1` if it is over target (or at target on a B2 hit), else from
    /// `T2`, recording it in the matching ghost list.
    fn replace(&mut self, in_b2: bool, evicted: &mut Vec<K>) -> bool {
        let list = if self.replace_from_t1(in_b2) {
            &mut self.t1
        } else {
            &mut self.t2
        };
        let Some(id) = list.pop_front(&mut self.arena) else {
            return false;
        };
        let node = self.arena.remove(id).expect("live list node");
        let resident = self
            .residents
            .remove(&node.key)
            .expect("listed key is resident");
        self.used -= resident.size;
        if let Some(sink) = &self.sink {
            sink.record(&Self::event_for(
                PolicyEventKind::Evict,
                &node.key,
                &resident,
            ));
        }
        match resident.region {
            Region::T1 => {
                self.t1_bytes -= resident.size;
                self.b1.push_mru(node.key.clone(), resident.size);
            }
            Region::T2 => {
                self.t2_bytes -= resident.size;
                self.b2.push_mru(node.key.clone(), resident.size);
            }
        }
        evicted.push(node.key);
        true
    }

    /// Keeps the ghost directories within the classic ARC bounds:
    /// `t1 + b1 <= c` and `t1 + t2 + b1 + b2 <= 2c` (in bytes).
    fn trim_ghosts(&mut self) {
        while self.t1_bytes + self.b1.bytes() > self.capacity && !self.b1.is_empty() {
            self.b1.pop_lru();
        }
        while self.used + self.b1.bytes() + self.b2.bytes() > 2 * self.capacity {
            if self.b2.pop_lru().is_none() && self.b1.pop_lru().is_none() {
                break;
            }
        }
    }

    fn admit_to_t2(&mut self, req: CacheRequest<K>, evicted: &mut Vec<K>) {
        while self.used + req.size > self.capacity {
            let ok = self.replace(false, evicted);
            debug_assert!(ok, "byte accounting out of sync");
        }
        let id = Self::push_node(&mut self.arena, &mut self.t2, req.key.clone());
        let resident = Resident {
            size: req.size,
            cost: req.cost,
            region: Region::T2,
            id,
        };
        if let Some(sink) = &self.sink {
            sink.record(&Self::event_for(
                PolicyEventKind::Admit,
                &req.key,
                &resident,
            ));
        }
        self.residents.insert(req.key, resident);
        self.used += req.size;
        self.t2_bytes += req.size;
    }

    fn on_hit(&mut self, key: &K) -> bool {
        // Case I: hit in T1 or T2 — promote to T2 MRU.
        let Some(resident) = self.residents.get_mut(key) else {
            return false;
        };
        let id = resident.id;
        match resident.region {
            Region::T1 => {
                resident.region = Region::T2;
                let size = resident.size;
                self.t1.unlink(&mut self.arena, id);
                self.t2.push_back(&mut self.arena, id);
                self.t1_bytes -= size;
                self.t2_bytes += size;
            }
            Region::T2 => {
                self.t2.move_to_back(&mut self.arena, id);
            }
        }
        true
    }
}

impl<K: CacheKey> EvictionPolicy<K> for Arc<K> {
    fn name(&self) -> String {
        "arc".to_owned()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.residents.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.residents.contains_key(key)
    }

    fn reference(&mut self, req: CacheRequest<K>, evicted: &mut Vec<K>) -> AccessOutcome {
        assert!(req.size > 0, "key-value pairs have positive size");
        if self.on_hit(&req.key) {
            return AccessOutcome::Hit;
        }
        if req.size > self.capacity {
            return AccessOutcome::MissBypassed;
        }
        // Case II: ghost hit in B1 — recency is winning, grow p.
        if self.b1.contains(&req.key) {
            let delta = if self.b1.bytes() > 0 {
                (u128::from(req.size) * u128::from(self.b2.bytes().max(1))
                    / u128::from(self.b1.bytes())) as u64
            } else {
                req.size
            };
            self.p = (self.p + delta.max(req.size)).min(self.capacity);
            self.b1.remove(&req.key);
            self.admit_to_t2(req, evicted);
            self.trim_ghosts();
            return AccessOutcome::MissInserted;
        }
        // Case III: ghost hit in B2 — frequency is winning, shrink p.
        if self.b2.contains(&req.key) {
            let delta = if self.b2.bytes() > 0 {
                (u128::from(req.size) * u128::from(self.b1.bytes().max(1))
                    / u128::from(self.b2.bytes())) as u64
            } else {
                req.size
            };
            self.p = self.p.saturating_sub(delta.max(req.size));
            self.b2.remove(&req.key);
            self.admit_to_t2(req, evicted);
            self.trim_ghosts();
            return AccessOutcome::MissInserted;
        }
        // Case IV: brand new key — admit into T1.
        while self.used + req.size > self.capacity {
            let ok = self.replace(false, evicted);
            debug_assert!(ok, "byte accounting out of sync");
        }
        let id = Self::push_node(&mut self.arena, &mut self.t1, req.key.clone());
        let resident = Resident {
            size: req.size,
            cost: req.cost,
            region: Region::T1,
            id,
        };
        if let Some(sink) = &self.sink {
            sink.record(&Self::event_for(
                PolicyEventKind::Admit,
                &req.key,
                &resident,
            ));
        }
        self.residents.insert(req.key, resident);
        self.used += req.size;
        self.t1_bytes += req.size;
        self.trim_ghosts();
        AccessOutcome::MissInserted
    }

    fn touch(&mut self, key: &K) -> bool {
        self.on_hit(key)
    }

    fn victim(&self) -> Option<K> {
        let list = if self.replace_from_t1(false) {
            &self.t1
        } else {
            &self.t2
        };
        list.front()
            .or_else(|| self.t1.front())
            .or_else(|| self.t2.front())
            .and_then(|id| self.arena.get(id))
            .map(|node| node.key.clone())
    }

    fn remove(&mut self, key: &K) -> bool {
        let Some(resident) = self.residents.remove(key) else {
            return false;
        };
        self.used -= resident.size;
        match resident.region {
            Region::T1 => {
                self.t1_bytes -= resident.size;
                self.t1.unlink(&mut self.arena, resident.id);
            }
            Region::T2 => {
                self.t2_bytes -= resident.size;
                self.t2.unlink(&mut self.arena, resident.id);
            }
        }
        self.arena.remove(resident.id);
        true
    }

    fn set_trace_sink(&mut self, sink: Option<SharedTraceSink>) {
        self.sink = sink;
    }

    fn trace_sink(&self) -> Option<&SharedTraceSink> {
        self.sink.as_ref()
    }

    fn eviction_event(&self, key: &K) -> Option<PolicyEvent> {
        let resident = self.residents.get(key)?;
        Some(Self::event_for(PolicyEventKind::Evict, key, resident))
    }

    fn queue_count(&self) -> Option<usize> {
        Some(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(c: &mut Arc, key: u64) -> (AccessOutcome, Vec<u64>) {
        let mut evicted = Vec::new();
        let out = c.reference(CacheRequest::new(key, 10, 0), &mut evicted);
        (out, evicted)
    }

    #[test]
    fn second_reference_promotes_to_t2() {
        let mut c = Arc::new(100);
        touch(&mut c, 1);
        assert_eq!(c.region_bytes(), (10, 0));
        touch(&mut c, 1);
        assert_eq!(c.region_bytes(), (0, 10));
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut c = Arc::new(55);
        let mut state = 1u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            touch(&mut c, state % 30);
            assert!(c.used_bytes() <= 55);
            let (t1, t2) = c.region_bytes();
            assert_eq!(t1 + t2, c.used_bytes());
        }
    }

    #[test]
    fn scan_does_not_flush_frequent_set() {
        let mut c = Arc::new(100);
        // Build a frequent set in T2.
        for _ in 0..5 {
            for k in 0..5 {
                touch(&mut c, k);
            }
        }
        // Scan 100 one-timers.
        for k in 1000..1100 {
            touch(&mut c, k);
        }
        let survivors = (0..5).filter(|&k| c.contains(&k)).count();
        assert!(survivors >= 3, "scan displaced the hot set: {survivors}/5");
    }

    #[test]
    fn b1_ghost_hit_grows_p() {
        let mut c = Arc::new(50);
        // Fill T1 and push keys into B1.
        for k in 0..10 {
            touch(&mut c, k);
        }
        let p_before = c.p_target();
        // Key 0 is long gone from T1 but remembered in B1.
        assert!(!c.contains(&0));
        touch(&mut c, 0);
        assert!(c.p_target() >= p_before, "B1 hit must not shrink p");
        assert!(c.contains(&0));
    }

    #[test]
    fn touch_promotes_and_victim_matches_replace() {
        let mut c = Arc::new(100);
        touch(&mut c, 1);
        assert!(EvictionPolicy::touch(&mut c, &1));
        assert_eq!(c.region_bytes(), (0, 10));
        assert!(!EvictionPolicy::touch(&mut c, &9));
        touch(&mut c, 2);
        // The victim is the next key REPLACE would take.
        let expected = EvictionPolicy::victim(&c).unwrap();
        let mut ev = Vec::new();
        c.replace(false, &mut ev);
        assert_eq!(ev, vec![expected]);
    }

    #[test]
    fn remove_from_both_regions() {
        let mut c = Arc::new(100);
        touch(&mut c, 1); // T1
        touch(&mut c, 2);
        touch(&mut c, 2); // T2
        assert!(EvictionPolicy::remove(&mut c, &1));
        assert!(EvictionPolicy::remove(&mut c, &2));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.region_bytes(), (0, 0));
        assert!(!EvictionPolicy::remove(&mut c, &1));
    }

    #[test]
    fn ghost_lists_stay_bounded() {
        let mut c = Arc::new(50);
        for k in 0..10_000 {
            touch(&mut c, k);
        }
        assert!(c.b1.bytes() + c.used_bytes() <= 50);
        assert!(c.b1.bytes() + c.b2.bytes() + c.used_bytes() <= 100);
    }

    #[test]
    fn oversized_bypasses() {
        let mut c = Arc::new(50);
        let mut ev = Vec::new();
        let out = c.reference(CacheRequest::new(1, 51, 0), &mut ev);
        assert_eq!(out, AccessOutcome::MissBypassed);
        assert!(c.is_empty());
    }
}
