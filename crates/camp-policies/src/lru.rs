//! Size-aware LRU: the paper's primary baseline.
//!
//! Classic least-recently-used eviction with byte accounting: a miss inserts
//! at the MRU end; when space runs out, entries are evicted from the LRU end
//! regardless of cost or size. Built on the same arena + intrusive list as
//! CAMP's queues, so per-operation costs are directly comparable.

use std::collections::HashMap;

use camp_core::arena::{Arena, EntryId};
use camp_core::lru_list::{Linked, Links, LruList};

use crate::policy::{AccessOutcome, CacheRequest, EvictionPolicy};

#[derive(Debug)]
struct Entry {
    key: u64,
    size: u64,
    links: Links,
}

impl Linked for Entry {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// A byte-capacity LRU cache over `u64` keys.
///
/// # Examples
///
/// ```
/// use camp_policies::{CacheRequest, EvictionPolicy, Lru};
///
/// let mut lru = Lru::new(100);
/// let mut evicted = Vec::new();
/// lru.reference(CacheRequest::new(1, 60, 0), &mut evicted);
/// lru.reference(CacheRequest::new(2, 40, 0), &mut evicted);
/// // Referencing key 1 refreshes it, so key 2 is the LRU victim.
/// lru.reference(CacheRequest::new(1, 60, 0), &mut evicted);
/// lru.reference(CacheRequest::new(3, 40, 0), &mut evicted);
/// assert_eq!(evicted, vec![2]);
/// ```
#[derive(Debug)]
pub struct Lru {
    map: HashMap<u64, EntryId>,
    arena: Arena<Entry>,
    list: LruList,
    capacity: u64,
    used: u64,
}

impl Lru {
    /// Creates an LRU cache with the given byte capacity.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Lru {
            map: HashMap::new(),
            arena: Arena::new(),
            list: LruList::new(),
            capacity,
            used: 0,
        }
    }

    /// The key next in line for eviction, if any.
    #[must_use]
    pub fn victim(&self) -> Option<u64> {
        self.list
            .front()
            .and_then(|id| self.arena.get(id))
            .map(|e| e.key)
    }

    /// Iterates over resident keys from LRU to MRU.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.list
            .iter(&self.arena)
            .filter_map(|id| self.arena.get(id).map(|e| e.key))
    }

    fn evict_one(&mut self, evicted: &mut Vec<u64>) -> bool {
        let Some(id) = self.list.pop_front(&mut self.arena) else {
            return false;
        };
        let entry = self.arena.remove(id).expect("live LRU head");
        self.map.remove(&entry.key);
        self.used -= entry.size;
        evicted.push(entry.key);
        true
    }

    fn detach(&mut self, key: u64) -> Option<u64> {
        let id = self.map.remove(&key)?;
        self.list.unlink(&mut self.arena, id);
        let entry = self.arena.remove(id).expect("live entry");
        self.used -= entry.size;
        Some(entry.size)
    }
}

impl EvictionPolicy for Lru {
    fn name(&self) -> String {
        "lru".to_owned()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn reference(&mut self, req: CacheRequest, evicted: &mut Vec<u64>) -> AccessOutcome {
        assert!(req.size > 0, "key-value pairs have positive size");
        if let Some(&id) = self.map.get(&req.key) {
            self.list.move_to_back(&mut self.arena, id);
            return AccessOutcome::Hit;
        }
        if req.size > self.capacity {
            return AccessOutcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            let ok = self.evict_one(evicted);
            debug_assert!(ok, "byte accounting out of sync");
        }
        let id = self.arena.insert(Entry {
            key: req.key,
            size: req.size,
            links: Links::new(),
        });
        self.list.push_back(&mut self.arena, id);
        self.map.insert(req.key, id);
        self.used += req.size;
        AccessOutcome::MissInserted
    }

    fn remove(&mut self, key: u64) -> bool {
        self.detach(key).is_some()
    }

    fn queue_count(&self) -> Option<usize> {
        Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(lru: &mut Lru, key: u64, size: u64) -> (AccessOutcome, Vec<u64>) {
        let mut evicted = Vec::new();
        let out = lru.reference(CacheRequest::new(key, size, 0), &mut evicted);
        (out, evicted)
    }

    #[test]
    fn evicts_in_recency_order() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 10);
        touch(&mut lru, 3, 10);
        let (_, ev) = touch(&mut lru, 4, 10);
        assert_eq!(ev, vec![1]);
        let (_, ev) = touch(&mut lru, 5, 10);
        assert_eq!(ev, vec![2]);
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 10);
        touch(&mut lru, 3, 10);
        let (out, _) = touch(&mut lru, 1, 10);
        assert_eq!(out, AccessOutcome::Hit);
        let (_, ev) = touch(&mut lru, 4, 10);
        assert_eq!(ev, vec![2]);
        assert!(lru.contains(1));
    }

    #[test]
    fn large_insert_evicts_several() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 10);
        touch(&mut lru, 3, 10);
        let (out, ev) = touch(&mut lru, 4, 25);
        assert_eq!(out, AccessOutcome::MissInserted);
        assert_eq!(ev, vec![1, 2, 3]);
        assert_eq!(lru.used_bytes(), 25);
    }

    #[test]
    fn oversized_request_bypasses() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        let (out, ev) = touch(&mut lru, 2, 31);
        assert_eq!(out, AccessOutcome::MissBypassed);
        assert!(ev.is_empty());
        assert!(lru.contains(1));
    }

    #[test]
    fn remove_frees_space() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 20);
        assert!(EvictionPolicy::remove(&mut lru, 1));
        assert!(!EvictionPolicy::remove(&mut lru, 1));
        assert_eq!(lru.used_bytes(), 20);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn iter_and_victim_follow_lru_order() {
        let mut lru = Lru::new(100);
        for k in 1..=4 {
            touch(&mut lru, k, 10);
        }
        touch(&mut lru, 2, 10); // refresh 2
        assert_eq!(lru.iter().collect::<Vec<_>>(), vec![1, 3, 4, 2]);
        assert_eq!(lru.victim(), Some(1));
    }

    #[test]
    fn ignores_cost_entirely() {
        // LRU's defining weakness in the paper: it evicts the expensive pair
        // as readily as a cheap one.
        let mut lru = Lru::new(30);
        let mut evicted = Vec::new();
        lru.reference(CacheRequest::new(1, 10, 1_000_000), &mut evicted);
        lru.reference(CacheRequest::new(2, 10, 1), &mut evicted);
        lru.reference(CacheRequest::new(3, 10, 1), &mut evicted);
        lru.reference(CacheRequest::new(4, 10, 1), &mut evicted);
        assert_eq!(evicted, vec![1]);
    }
}
