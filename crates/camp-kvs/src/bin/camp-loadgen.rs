//! `camp-loadgen` — a closed-loop load generator for `camp-kvsd`.
//!
//! ```text
//! camp-loadgen [--addr ADDR] [--connections N] [--threads N]
//!              [--pipeline DEPTH]
//!              [--duration-secs S] [--warmup-secs S] [--get-ratio R]
//!              [--keys N] [--value-bytes N] [--seed N]
//!              [--retries N] [--expect-errors] [--verify]
//!              [--worker-sweep LIST] [--server-bin PATH]
//!              [--out FILE] [--label TEXT]
//! ```
//!
//! Each connection runs a closed loop: it assembles a pipeline of `DEPTH`
//! commands (GET/SET mixed by `--get-ratio`, keys drawn uniformly from
//! `--keys` via the in-repo `Rng64`), writes the whole batch in one
//! segment, then reads all `DEPTH` responses — exactly the traffic shape
//! the server's flush coalescing is built for. Client-side latency is
//! recorded per command class into `camp-telemetry` histograms (each op in
//! a batch is charged the batch round-trip, the closed-loop convention),
//! and the main thread samples the completed-op counter every 250 ms so
//! the run's throughput *trajectory* — not just the average — lands in the
//! machine-readable report.
//!
//! `--threads` decouples connection count from thread count: each thread
//! multiplexes its share of connections by writing one batch to every
//! connection before collecting any replies, so `--connections 10000
//! --threads 8` keeps ten thousand server connections busy from eight
//! OS threads — the shape the server's epoll reactor is built for. The
//! default (`--threads 0`) runs one thread per connection, the historical
//! behavior. With multiplexing, a batch's recorded round-trip includes
//! time the thread spends servicing its sibling connections; that is the
//! closed-loop convention extended per-thread, and it is why latency
//! comparisons should hold `--threads` fixed.
//!
//! `--retries N` makes the run resilient for chaos testing: a worker whose
//! connection dies mid-batch reconnects and re-issues the whole batch
//! (sets and gets are idempotent, so a replay is safe) up to N times
//! before charging the batch's ops as errors and moving on; the prefill
//! retries per batch the same way. `--expect-errors` declares that errors
//! are part of the experiment (a `--chaos` server is on the other side):
//! the error/retry/reconnect counts land in the report's `resilience`
//! object and the process still exits 0 — only a run that completes zero
//! ops fails.
//!
//! `--verify` adds a read-back pass after the measured phase: a
//! deterministic sample of the keyspace (up to 2000 keys, spread evenly)
//! is fetched over a fresh connection and every returned value is
//! byte-compared against the canonical payload. Misses are reported
//! separately from mismatches — after a crash under `--fsync interval` a
//! *missing* recent key is bounded loss, but a *mismatched* value is
//! corruption and fails the run. With `--duration-secs 0` the loadgen
//! skips prefill and measurement entirely and runs verification alone:
//! the read-your-crashed-writes check a recovery harness wants.
//!
//! The report is written to `--out` (default `BENCH_server.json`):
//! ops/sec, p50/p90/p99/max per command class, hit ratio, error and
//! resilience counters, and the trajectory samples, plus the full config
//! so before/after runs are comparable.
//!
//! `--worker-sweep 1,2,4` measures multi-core scaling instead of a single
//! run: for each worker count the loadgen spawns its own `camp-kvsd`
//! (`--server-bin`, default: the `camp-kvsd` sitting next to this binary)
//! on an ephemeral port, waits for the `camp_kvsd_ready` banner on the
//! child's stderr, runs the configured workload against it, and tears the
//! server down. The report becomes a `scaling` array — ops/sec, speedup
//! and parallel efficiency per worker count — and a compact table is
//! printed, one line per point. `--addr` is ignored in sweep mode.

#![forbid(unsafe_code)]

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use camp_core::rng::Rng64;
use camp_telemetry::{Histogram, HistogramSnapshot};

#[derive(Debug, Clone)]
struct Config {
    addr: String,
    connections: usize,
    threads: usize,
    pipeline: usize,
    duration_secs: f64,
    warmup_secs: f64,
    get_ratio: f64,
    keys: u64,
    value_bytes: usize,
    seed: u64,
    retries: u32,
    expect_errors: bool,
    verify: bool,
    worker_sweep: Option<Vec<usize>>,
    server_bin: Option<String>,
    out: String,
    label: String,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:11311".to_owned(),
            connections: 4,
            threads: 0,
            pipeline: 16,
            duration_secs: 5.0,
            warmup_secs: 0.5,
            get_ratio: 0.9,
            keys: 10_000,
            value_bytes: 100,
            seed: 42,
            retries: 0,
            expect_errors: false,
            verify: false,
            worker_sweep: None,
            server_bin: None,
            out: "BENCH_server.json".to_owned(),
            label: String::new(),
        }
    }
}

fn usage() -> &'static str {
    "usage: camp-loadgen [--addr ADDR] [--connections N] [--threads N]\n                    [--pipeline DEPTH]\n                    [--duration-secs S] [--warmup-secs S] [--get-ratio R]\n                    [--keys N] [--value-bytes N] [--seed N]\n                    [--retries N] [--expect-errors] [--verify]\n                    [--worker-sweep LIST] [--server-bin PATH]\n                    [--out FILE] [--label TEXT]\n\ndefaults: --addr 127.0.0.1:11311 --connections 4 --threads 0 --pipeline 16\n          --duration-secs 5 --warmup-secs 0.5 --get-ratio 0.9\n          --keys 10000 --value-bytes 100 --seed 42 --retries 0\n          --out BENCH_server.json\n\n--threads N multiplexes the connections over N threads (0 = one thread per\n  connection); lets one machine hold thousands of server connections open\n--retries N re-issues a failed batch up to N times over a fresh connection\n--expect-errors records errors/retries/reconnects in the report instead of\n  treating them as suspicious (for runs against a --chaos server); the exit\n  code stays 0 unless zero ops completed\n--verify reads back a deterministic keyspace sample after the run and\n  byte-compares every returned value; any mismatch fails the run. With\n  --duration-secs 0 the verification pass runs alone (no prefill, no\n  measurement) — the read-back check for crash-recovery harnesses\n--worker-sweep 1,2,4 spawns one camp-kvsd per worker count on an ephemeral\n  port, runs the workload against each, and reports a scaling table (ops/s,\n  speedup, parallel efficiency); --addr is ignored and --verify is skipped\n--server-bin PATH the camp-kvsd to spawn in sweep mode (default: the\n  camp-kvsd binary next to camp-loadgen)\n"
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--connections" => {
                config.connections = value("--connections")?
                    .parse()
                    .map_err(|_| "bad --connections".to_owned())?;
            }
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_owned())?;
            }
            "--pipeline" => {
                config.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|_| "bad --pipeline".to_owned())?;
            }
            "--duration-secs" => {
                config.duration_secs = value("--duration-secs")?
                    .parse()
                    .map_err(|_| "bad --duration-secs".to_owned())?;
            }
            "--warmup-secs" => {
                config.warmup_secs = value("--warmup-secs")?
                    .parse()
                    .map_err(|_| "bad --warmup-secs".to_owned())?;
            }
            "--get-ratio" => {
                config.get_ratio = value("--get-ratio")?
                    .parse()
                    .map_err(|_| "bad --get-ratio".to_owned())?;
            }
            "--keys" => {
                config.keys = value("--keys")?
                    .parse()
                    .map_err(|_| "bad --keys".to_owned())?;
            }
            "--value-bytes" => {
                config.value_bytes = value("--value-bytes")?
                    .parse()
                    .map_err(|_| "bad --value-bytes".to_owned())?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_owned())?;
            }
            "--retries" => {
                config.retries = value("--retries")?
                    .parse()
                    .map_err(|_| "bad --retries".to_owned())?;
            }
            "--expect-errors" => config.expect_errors = true,
            "--verify" => config.verify = true,
            "--worker-sweep" => {
                let list = value("--worker-sweep")?;
                let counts = list
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| "bad --worker-sweep (expected e.g. 1,2,4)".to_owned())?;
                if counts.is_empty() || counts.contains(&0) {
                    return Err("--worker-sweep needs positive worker counts".to_owned());
                }
                config.worker_sweep = Some(counts);
            }
            "--server-bin" => config.server_bin = Some(value("--server-bin")?),
            "--out" => config.out = value("--out")?,
            "--label" => config.label = value("--label")?,
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if config.connections == 0 || config.pipeline == 0 || config.keys == 0 {
        return Err("--connections, --pipeline and --keys must be positive".to_owned());
    }
    if !(0.0..=1.0).contains(&config.get_ratio) {
        return Err("--get-ratio must be in [0, 1]".to_owned());
    }
    Ok(config)
}

/// Counters and histograms shared by every worker.
struct Totals {
    stop: AtomicBool,
    /// Completed ops (every class).
    ops: AtomicU64,
    gets: AtomicU64,
    sets: AtomicU64,
    hits: AtomicU64,
    errors: AtomicU64,
    /// Whole batches re-issued after a connection failure.
    batch_retries: AtomicU64,
    /// Successful re-dials after a connection died.
    reconnects: AtomicU64,
    get_latency: Histogram,
    set_latency: Histogram,
}

impl Totals {
    fn new() -> Totals {
        Totals {
            stop: AtomicBool::new(false),
            ops: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            sets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batch_retries: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            get_latency: Histogram::new(),
            set_latency: Histogram::new(),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Op {
    Get,
    Set,
}

/// One worker connection (socket halves).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn connect(addr: &str) -> io::Result<Conn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(Conn {
        reader: BufReader::new(stream.try_clone()?),
        writer: stream,
    })
}

fn push_key(buf: &mut Vec<u8>, id: u64) {
    // Fixed-width keys: "key-00001234".
    let _ = write!(buf, "key-{id:08}");
}

/// Writes one pipelined batch of sets and reads the replies. Any reply
/// other than STORED is an error (the batch is already on the wire, so
/// the remaining replies are still consumed).
fn prefill_batch(
    conn: &mut Conn,
    request: &[u8],
    pending: usize,
    line: &mut Vec<u8>,
) -> io::Result<()> {
    conn.writer.write_all(request)?;
    let mut bad = 0usize;
    for _ in 0..pending {
        read_line(&mut conn.reader, line)?;
        if line != b"STORED" {
            bad += 1;
        }
    }
    if bad > 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("prefill: {bad} of {pending} sets not stored"),
        ));
    }
    Ok(())
}

/// Pre-stores every key so the measured phase runs mostly hits. With
/// `--retries 0` a single connection pipelines batches of 128 and any
/// failure is fatal; with retries, batches shrink to 32 (a dropped batch
/// forfeits less) and each failed batch is re-issued over a fresh
/// connection up to the retry budget — sets are idempotent, so the replay
/// is safe. A batch that exhausts its budget is skipped: the keys it
/// covered just miss during the measured phase.
fn prefill(config: &Config, value: &[u8]) -> io::Result<()> {
    let batch_size: u64 = if config.retries > 0 { 32 } else { 128 };
    let mut conn: Option<Conn> = Some(connect(&config.addr)?);
    let mut request = Vec::new();
    let mut line = Vec::new();
    let mut pending = 0usize;
    let mut skipped = 0u64;
    for id in 0..config.keys {
        request.extend_from_slice(b"set ");
        push_key(&mut request, id);
        let _ = write!(request, " 0 0 {}\r\n", value.len());
        request.extend_from_slice(value);
        request.extend_from_slice(b"\r\n");
        pending += 1;
        if pending as u64 == batch_size || id + 1 == config.keys {
            let mut attempt = 0u32;
            loop {
                let ready = match conn.as_mut() {
                    Some(c) => Ok(c),
                    None => connect(&config.addr).map(|c| conn.insert(c)),
                };
                let result = ready.and_then(|c| prefill_batch(c, &request, pending, &mut line));
                match result {
                    Ok(()) => break,
                    Err(err) if attempt < config.retries => {
                        conn = None;
                        attempt += 1;
                        let _ = err;
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(err) if config.retries > 0 => {
                        eprintln!("camp-loadgen: prefill batch skipped: {err}");
                        skipped += pending as u64;
                        conn = None;
                        break;
                    }
                    Err(err) => return Err(err),
                }
            }
            request.clear();
            pending = 0;
        }
    }
    if skipped > 0 {
        eprintln!("camp-loadgen: prefill skipped {skipped} keys after retries");
    }
    if let Some(mut c) = conn {
        let _ = c.writer.write_all(b"quit\r\n");
    }
    Ok(())
}

fn read_line(reader: &mut BufReader<TcpStream>, line: &mut Vec<u8>) -> io::Result<()> {
    line.clear();
    let read = reader.read_until(b'\n', line)?;
    if read == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    }
    while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        line.pop();
    }
    Ok(())
}

/// Consumes one GET response (VALUE blocks until END); returns whether the
/// key was a hit, or `None` on a protocol error.
fn read_get_response(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    skip: &mut Vec<u8>,
) -> io::Result<Option<bool>> {
    let mut hit = false;
    loop {
        read_line(reader, line)?;
        if line == b"END" {
            return Ok(Some(hit));
        }
        if !line.starts_with(b"VALUE ") {
            return Ok(None);
        }
        // Data-block length is the last space-separated token.
        let len: usize = line
            .rsplit(|&b| b == b' ')
            .next()
            .and_then(|t| std::str::from_utf8(t).ok())
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad VALUE header"))?;
        if skip.len() < len + 2 {
            skip.resize(len + 2, 0);
        }
        reader.read_exact(&mut skip[..len + 2])?;
        hit = true;
    }
}

/// Reads the replies for one batch already on the wire; returns (hits,
/// soft errors). A soft error is an error *reply* (e.g. an injected
/// SERVER_ERROR) — the connection stays usable; an `Err` means the
/// connection is dead.
fn read_batch(
    conn: &mut Conn,
    ops: &[Op],
    line: &mut Vec<u8>,
    skip: &mut Vec<u8>,
) -> io::Result<(u64, u64)> {
    let mut hits = 0u64;
    let mut soft_errors = 0u64;
    for &op in ops {
        match op {
            Op::Get => match read_get_response(&mut conn.reader, line, skip)? {
                Some(true) => hits += 1,
                Some(false) => {}
                None => soft_errors += 1,
            },
            Op::Set => {
                read_line(&mut conn.reader, line)?;
                if line != b"STORED" {
                    soft_errors += 1;
                }
            }
        }
    }
    Ok((hits, soft_errors))
}

/// Writes one batch and reads all its replies.
fn run_batch(
    conn: &mut Conn,
    request: &[u8],
    ops: &[Op],
    line: &mut Vec<u8>,
    skip: &mut Vec<u8>,
) -> io::Result<(u64, u64)> {
    conn.writer.write_all(request)?;
    read_batch(conn, ops, line, skip)
}

/// What the `--verify` read-back pass found.
#[derive(Debug, Clone, Copy, Default)]
struct VerifyStats {
    /// Keys fetched and compared.
    checked: u64,
    /// Values returned with the wrong bytes (corruption — always fatal).
    mismatched: u64,
    /// Keys the server no longer has (bounded loss after a crash under
    /// `--fsync interval`; not an error).
    missing: u64,
}

/// Fetches a deterministic, evenly-spread sample of the keyspace (up to
/// 2000 keys) over one fresh connection and byte-compares each returned
/// value against the canonical payload. The VALUE header is parsed
/// strictly — an unexpected key, a bad length, or wrong data bytes all
/// count as a mismatch.
fn verify(config: &Config, value: &[u8]) -> io::Result<VerifyStats> {
    let mut conn = connect(&config.addr)?;
    let sample = config.keys.min(2000);
    let mut stats = VerifyStats::default();
    let mut request = Vec::new();
    let mut expected_key = Vec::new();
    let mut line = Vec::new();
    let mut data = vec![0u8; value.len() + 2];
    for i in 0..sample {
        let id = i * config.keys / sample;
        request.clear();
        request.extend_from_slice(b"get ");
        push_key(&mut request, id);
        request.extend_from_slice(b"\r\n");
        conn.writer.write_all(&request)?;
        expected_key.clear();
        push_key(&mut expected_key, id);
        stats.checked += 1;

        read_line(&mut conn.reader, &mut line)?;
        if line == b"END" {
            stats.missing += 1;
            continue;
        }
        // Strict header: VALUE <key> <flags> <len>, our key, our length.
        let mut tokens = line.split(|&b| b == b' ');
        let well_formed = tokens.next() == Some(b"VALUE")
            && tokens.next() == Some(expected_key.as_slice())
            && tokens.next().is_some()
            && tokens.next().and_then(|t| {
                std::str::from_utf8(t)
                    .ok()
                    .and_then(|t| t.parse::<usize>().ok())
            }) == Some(value.len())
            && tokens.next().is_none();
        if !well_formed {
            stats.mismatched += 1;
            // The reply is in an unknown shape; re-dial rather than guess
            // at how many bytes to skip.
            conn = connect(&config.addr)?;
            continue;
        }
        conn.reader.read_exact(&mut data)?;
        let matches = &data[..value.len()] == value && &data[value.len()..] == b"\r\n";
        read_line(&mut conn.reader, &mut line)?;
        if !matches || line != b"END" {
            stats.mismatched += 1;
        }
    }
    let _ = conn.writer.write_all(b"quit\r\n");
    Ok(stats)
}

/// One multiplexed connection: the socket plus the batch it has in
/// flight. A worker thread owns several of these and keeps a batch on
/// the wire on every one of them at all times.
struct Slot {
    conn: Option<Conn>,
    ever_connected: bool,
    request: Vec<u8>,
    ops: Vec<Op>,
    started: Instant,
    /// The batch was written successfully and its replies are pending.
    wrote: bool,
}

/// Returns the slot's live connection, dialing one if needed and
/// counting the re-dial once the slot has ever been connected.
fn ensure_conn<'a>(
    conn: &'a mut Option<Conn>,
    ever_connected: &mut bool,
    addr: &str,
    totals: &Totals,
) -> io::Result<&'a mut Conn> {
    match conn {
        Some(ready) => Ok(ready),
        None => {
            let dialed = connect(addr)?;
            if *ever_connected {
                // ordering: Relaxed — statistics counter.
                totals.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            *ever_connected = true;
            Ok(conn.insert(dialed))
        }
    }
}

fn worker(config: Config, totals: Arc<Totals>, worker_id: u64, value: Arc<Vec<u8>>, conns: usize) {
    let mut rng = Rng64::seed_from_u64(config.seed ^ (worker_id.wrapping_mul(0x9E37_79B9)));
    let mut slots: Vec<Slot> = (0..conns)
        .map(|_| Slot {
            conn: None,
            ever_connected: false,
            request: Vec::new(),
            ops: Vec::with_capacity(config.pipeline),
            started: Instant::now(),
            wrote: false,
        })
        .collect();
    let mut line = Vec::new();
    let mut skip = Vec::new();
    // ordering: Relaxed — best-effort stop flag: a worker finishing one
    // extra batch after the deadline is fine, and the final counts are
    // ordered by the join below anyway.
    while !totals.stop.load(Ordering::Relaxed) {
        // Issue phase: put one batch on the wire per connection before
        // reading anything back, so every connection this thread owns has
        // work in flight at once.
        for slot in &mut slots {
            slot.request.clear();
            slot.ops.clear();
            slot.wrote = false;
            for _ in 0..config.pipeline {
                let id = rng.range_u64(0, config.keys);
                if rng.chance(config.get_ratio) {
                    slot.request.extend_from_slice(b"get ");
                    push_key(&mut slot.request, id);
                    slot.request.extend_from_slice(b"\r\n");
                    slot.ops.push(Op::Get);
                } else {
                    slot.request.extend_from_slice(b"set ");
                    push_key(&mut slot.request, id);
                    let _ = write!(slot.request, " 0 0 {}\r\n", value.len());
                    slot.request.extend_from_slice(&value);
                    slot.request.extend_from_slice(b"\r\n");
                    slot.ops.push(Op::Set);
                }
            }
            slot.started = Instant::now();
            let issued = ensure_conn(
                &mut slot.conn,
                &mut slot.ever_connected,
                &config.addr,
                &totals,
            )
            .and_then(|c| c.writer.write_all(&slot.request));
            match issued {
                Ok(()) => slot.wrote = true,
                Err(err) => {
                    slot.conn = None;
                    if config.retries == 0 {
                        // Legacy behavior: a dead connection ends the
                        // worker (the others keep going).
                        eprintln!("camp-loadgen: worker {worker_id}: {err}");
                        // ordering: Relaxed — statistics counter.
                        totals.errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // The collect phase below replays the batch over a
                    // fresh connection.
                }
            }
        }
        // Collect phase: read every slot's replies, re-dialing and
        // replaying a slot's batch on connection failure up to the retry
        // budget. Sets and gets are idempotent, so a replay is safe.
        for slot in &mut slots {
            let mut attempt = 0u32;
            let outcome = loop {
                let result = if slot.wrote {
                    // Replies for the already-written batch.
                    slot.wrote = false;
                    match slot.conn.as_mut() {
                        Some(c) => read_batch(c, &slot.ops, &mut line, &mut skip),
                        None => Err(io::Error::new(io::ErrorKind::NotConnected, "no connection")),
                    }
                } else {
                    ensure_conn(
                        &mut slot.conn,
                        &mut slot.ever_connected,
                        &config.addr,
                        &totals,
                    )
                    .and_then(|c| run_batch(c, &slot.request, &slot.ops, &mut line, &mut skip))
                };
                match result {
                    Ok(counts) => break Ok(counts),
                    Err(err) => {
                        slot.conn = None;
                        // ordering: Relaxed(x2) — stop flag (see the
                        // worker loop) and a statistics counter.
                        if attempt >= config.retries || totals.stop.load(Ordering::Relaxed) {
                            break Err(err);
                        }
                        totals.batch_retries.fetch_add(1, Ordering::Relaxed);
                        attempt += 1;
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            };
            let (hits, soft_errors) = match outcome {
                Ok(counts) => counts,
                Err(err) => {
                    if config.retries == 0 {
                        eprintln!("camp-loadgen: worker {worker_id}: {err}");
                        // ordering: Relaxed — statistics counter.
                        totals.errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Budget exhausted: the batch's ops are errors; move on.
                    totals
                        .errors
                        // ordering: Relaxed — statistics counter.
                        .fetch_add(slot.ops.len() as u64, Ordering::Relaxed);
                    continue;
                }
            };
            let micros = u64::try_from(slot.started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let mut gets = 0u64;
            let mut sets = 0u64;
            for &op in &slot.ops {
                match op {
                    Op::Get => {
                        totals.get_latency.record(micros);
                        gets += 1;
                    }
                    Op::Set => {
                        totals.set_latency.record(micros);
                        sets += 1;
                    }
                }
            }
            // ordering: Relaxed(x5) — statistics counters; the final
            // report reads them after joining every worker.
            totals.ops.fetch_add(gets + sets, Ordering::Relaxed);
            totals.gets.fetch_add(gets, Ordering::Relaxed);
            totals.sets.fetch_add(sets, Ordering::Relaxed);
            totals.hits.fetch_add(hits, Ordering::Relaxed);
            if soft_errors > 0 {
                totals.errors.fetch_add(soft_errors, Ordering::Relaxed);
            }
        }
    }
    for slot in &mut slots {
        if let Some(conn) = slot.conn.as_mut() {
            let _ = conn.writer.write_all(b"quit\r\n");
        }
    }
}

/// Everything one measured run produces (warmup excluded).
struct RunStats {
    elapsed_secs: f64,
    total_ops: u64,
    hit_ratio: f64,
    errors: u64,
    batch_retries: u64,
    reconnects: u64,
    trajectory: Vec<(f64, u64, f64)>,
    get_snap: HistogramSnapshot,
    set_snap: HistogramSnapshot,
}

impl RunStats {
    fn ops_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.total_ops as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// The all-zero stats a pure-verify run (`--verify --duration-secs 0`)
    /// reports in place of a measured phase.
    fn empty() -> RunStats {
        RunStats {
            elapsed_secs: 0.0,
            total_ops: 0,
            hit_ratio: 0.0,
            errors: 0,
            batch_retries: 0,
            reconnects: 0,
            trajectory: Vec::new(),
            get_snap: Histogram::new().snapshot(),
            set_snap: Histogram::new().snapshot(),
        }
    }
}

/// Runs the full measured phase against `config.addr`: spawns the worker
/// threads, warms up, re-baselines, samples the trajectory, stops and
/// joins. The server must already be prefilled.
fn measure(config: &Config, value: &Arc<Vec<u8>>) -> RunStats {
    let totals = Arc::new(Totals::new());
    // `--threads 0` keeps the historical one-thread-per-connection shape;
    // otherwise spread the connections over the threads as evenly as
    // possible (the first `connections % threads` threads take one extra).
    let threads = if config.threads == 0 {
        config.connections
    } else {
        config.threads.min(config.connections)
    };
    let base = config.connections / threads;
    let extra = config.connections % threads;
    let workers: Vec<_> = (0..threads)
        .map(|i| {
            let config = config.clone();
            let totals = Arc::clone(&totals);
            let value = Arc::clone(value);
            let conns = base + usize::from(i < extra);
            std::thread::Builder::new()
                .name(format!("loadgen-{i}"))
                .spawn(move || worker(config, totals, i as u64, value, conns))
                .expect("spawn worker")
        })
        .collect();

    // Warm up, then re-baseline every counter and histogram so the report
    // reflects steady state only.
    std::thread::sleep(Duration::from_secs_f64(config.warmup_secs.max(0.0)));
    totals.get_latency.reset();
    totals.set_latency.reset();
    // ordering: Relaxed(x4) — statistics baselines; warmup tolerances
    // dwarf any cross-thread skew.
    let ops_base = totals.ops.load(Ordering::Relaxed);
    let gets_base = totals.gets.load(Ordering::Relaxed);
    let hits_base = totals.hits.load(Ordering::Relaxed);
    let errors_base = totals.errors.load(Ordering::Relaxed);
    let started = Instant::now();

    // Sample the throughput trajectory every 250 ms.
    let mut trajectory: Vec<(f64, u64, f64)> = Vec::new();
    let mut last_t = 0.0f64;
    let mut last_ops = 0u64;
    while started.elapsed().as_secs_f64() < config.duration_secs {
        let remaining = config.duration_secs - started.elapsed().as_secs_f64();
        std::thread::sleep(Duration::from_secs_f64(remaining.clamp(0.0, 0.25)));
        let t = started.elapsed().as_secs_f64();
        // ordering: Relaxed — sampling a statistics counter mid-run.
        let cumulative = totals.ops.load(Ordering::Relaxed) - ops_base;
        let rate = if t > last_t {
            (cumulative - last_ops) as f64 / (t - last_t)
        } else {
            0.0
        };
        trajectory.push((t, cumulative, rate));
        last_t = t;
        last_ops = cumulative;
    }
    // ordering: Relaxed(x2) — stop flag (see the worker loop) and a
    // statistics read; the authoritative counts come after the joins.
    totals.stop.store(true, Ordering::Relaxed);
    let elapsed_secs = started.elapsed().as_secs_f64();
    let total_ops = totals.ops.load(Ordering::Relaxed) - ops_base;
    for handle in workers {
        let _ = handle.join();
    }

    // ordering: Relaxed(x3) — statistics counters, read after every
    // worker has been joined.
    let gets = totals.gets.load(Ordering::Relaxed) - gets_base;
    let hits = totals.hits.load(Ordering::Relaxed) - hits_base;
    let errors = totals.errors.load(Ordering::Relaxed) - errors_base;
    let hit_ratio = if gets > 0 {
        hits as f64 / gets as f64
    } else {
        0.0
    };
    RunStats {
        elapsed_secs,
        total_ops,
        hit_ratio,
        errors,
        // ordering: Relaxed(x2) — statistics counters, post-join.
        batch_retries: totals.batch_retries.load(Ordering::Relaxed),
        reconnects: totals.reconnects.load(Ordering::Relaxed),
        trajectory,
        get_snap: totals.get_latency.snapshot(),
        set_snap: totals.set_latency.snapshot(),
    }
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn command_json(name: &str, snap: &HistogramSnapshot) -> String {
    format!(
        "\"{name}\": {{\"ops\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"mean_us\": {:.1}}}",
        snap.count,
        snap.quantile(0.5),
        snap.quantile(0.9),
        snap.quantile(0.99),
        snap.max,
        snap.mean(),
    )
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    config: &Config,
    elapsed_secs: f64,
    total_ops: u64,
    hit_ratio: f64,
    errors: u64,
    resilience: (u64, u64),
    verify: Option<VerifyStats>,
    trajectory: &[(f64, u64, f64)],
    get_snap: &HistogramSnapshot,
    set_snap: &HistogramSnapshot,
) -> String {
    let ops_per_sec = if elapsed_secs > 0.0 {
        total_ops as f64 / elapsed_secs
    } else {
        0.0
    };
    let (batch_retries, reconnects) = resilience;
    let v = verify.unwrap_or_default();
    let verify_json = format!(
        "{{\"enabled\": {}, \"checked\": {}, \"mismatched\": {}, \"missing\": {}}}",
        verify.is_some(),
        v.checked,
        v.mismatched,
        v.missing,
    );
    let samples: Vec<String> = trajectory
        .iter()
        .map(|&(t, cumulative, rate)| {
            format!(
                "{{\"t_secs\": {t:.3}, \"cumulative_ops\": {cumulative}, \"interval_ops_per_sec\": {rate:.1}}}"
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"camp-loadgen\",\n  \"label\": \"{}\",\n  \"addr\": \"{}\",\n  \"config\": {{\"connections\": {}, \"threads\": {}, \"pipeline\": {}, \"get_ratio\": {}, \"keys\": {}, \"value_bytes\": {}, \"duration_secs\": {}, \"warmup_secs\": {}, \"seed\": {}, \"retries\": {}, \"expect_errors\": {}}},\n  \"elapsed_secs\": {elapsed_secs:.3},\n  \"total_ops\": {total_ops},\n  \"ops_per_sec\": {ops_per_sec:.1},\n  \"hit_ratio\": {hit_ratio:.4},\n  \"errors\": {errors},\n  \"resilience\": {{\"batch_retries\": {batch_retries}, \"reconnects\": {reconnects}}},\n  \"verify\": {verify_json},\n  \"commands\": {{{}, {}}},\n  \"trajectory\": [{}]\n}}\n",
        escape_json(&config.label),
        escape_json(&config.addr),
        config.connections,
        config.threads,
        config.pipeline,
        config.get_ratio,
        config.keys,
        config.value_bytes,
        config.duration_secs,
        config.warmup_secs,
        config.seed,
        config.retries,
        config.expect_errors,
        command_json("get", get_snap),
        command_json("set", set_snap),
        samples.join(", "),
    )
}

/// The camp-kvsd to spawn in sweep mode when `--server-bin` is not given:
/// the binary sitting next to this one (both land in the same cargo
/// target directory).
fn default_server_bin() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("camp-kvsd")))
        .map(|path| path.to_string_lossy().into_owned())
        .unwrap_or_else(|| "camp-kvsd".to_owned())
}

/// Spawns `bin --workers N` on an ephemeral port and waits for the
/// `camp_kvsd_ready` banner on its stderr, returning the child and the
/// bound address. Remaining stderr is drained by a detached thread so a
/// chatty server never blocks on a full pipe.
fn spawn_server(bin: &str, workers: usize) -> io::Result<(Child, String)> {
    let mut child = Command::new(bin)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--log-level",
            "info",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|err| io::Error::new(err.kind(), format!("spawning {bin}: {err}")))?;
    let stderr = child.stderr.take().ok_or_else(|| {
        io::Error::new(io::ErrorKind::BrokenPipe, "child stderr was not captured")
    })?;
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    let mut addr = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // EOF: the server died before becoming ready.
        }
        if line.contains("event=camp_kvsd_ready") {
            addr = line
                .split_whitespace()
                .find_map(|token| token.strip_prefix("addr="))
                .map(str::to_owned);
            break;
        }
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    match addr {
        Some(addr) => Ok((child, addr)),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("{bin} --workers {workers} exited without a ready banner"),
            ))
        }
    }
}

/// One measured point of the worker sweep.
struct SweepPoint {
    workers: usize,
    stats: RunStats,
}

fn render_sweep_report(config: &Config, server_bin: &str, points: &[SweepPoint]) -> String {
    let base = &points[0];
    let scaling: Vec<String> = points
        .iter()
        .map(|point| {
            let speedup = point.stats.ops_per_sec() / base.stats.ops_per_sec().max(1.0);
            let efficiency =
                speedup / (point.workers as f64 / base.workers as f64);
            format!(
                "{{\"workers\": {}, \"ops_per_sec\": {:.1}, \"total_ops\": {}, \"hit_ratio\": {:.4}, \"errors\": {}, \"speedup\": {speedup:.3}, \"efficiency\": {efficiency:.3}}}",
                point.workers,
                point.stats.ops_per_sec(),
                point.stats.total_ops,
                point.stats.hit_ratio,
                point.stats.errors,
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"camp-loadgen worker sweep\",\n  \"label\": \"{}\",\n  \"server_bin\": \"{}\",\n  \"config\": {{\"connections\": {}, \"threads\": {}, \"pipeline\": {}, \"get_ratio\": {}, \"keys\": {}, \"value_bytes\": {}, \"duration_secs\": {}, \"warmup_secs\": {}, \"seed\": {}}},\n  \"scaling\": [{}]\n}}\n",
        escape_json(&config.label),
        escape_json(server_bin),
        config.connections,
        config.threads,
        config.pipeline,
        config.get_ratio,
        config.keys,
        config.value_bytes,
        config.duration_secs,
        config.warmup_secs,
        config.seed,
        scaling.join(", "),
    )
}

/// Sweep mode: one spawned server + measured run per worker count.
fn run_worker_sweep(config: &Config, sweep: &[usize]) -> ExitCode {
    let server_bin = config.server_bin.clone().unwrap_or_else(default_server_bin);
    let value = Arc::new(vec![b'x'; config.value_bytes]);
    let mut points: Vec<SweepPoint> = Vec::new();
    for &workers in sweep {
        let (mut child, addr) = match spawn_server(&server_bin, workers) {
            Ok(spawned) => spawned,
            Err(err) => {
                eprintln!("camp-loadgen: sweep point --workers {workers}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let mut run = config.clone();
        run.addr = addr;
        let result = prefill(&run, &value).map(|()| measure(&run, &value));
        let _ = child.kill();
        let _ = child.wait();
        match result {
            Ok(stats) => points.push(SweepPoint { workers, stats }),
            Err(err) => {
                eprintln!("camp-loadgen: sweep point --workers {workers}: prefill failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = render_sweep_report(config, &server_bin, &points);
    if let Err(err) = std::fs::write(&config.out, &report) {
        eprintln!("camp-loadgen: writing {} failed: {err}", config.out);
        return ExitCode::FAILURE;
    }
    let base_rate = points[0].stats.ops_per_sec().max(1.0);
    let base_workers = points[0].workers as f64;
    println!("camp-loadgen: worker sweep ({} points)", points.len());
    println!("  workers      ops/sec  speedup  efficiency");
    for point in &points {
        let speedup = point.stats.ops_per_sec() / base_rate;
        let efficiency = speedup / (point.workers as f64 / base_workers);
        println!(
            "  {:>7}  {:>11.0}  {:>6.2}x  {:>9.0}%",
            point.workers,
            point.stats.ops_per_sec(),
            speedup,
            efficiency * 100.0,
        );
    }
    println!("  report written to {}", config.out);
    if points.iter().any(|p| p.stats.total_ops == 0) {
        eprintln!("camp-loadgen: a sweep point completed no operations");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if let Some(sweep) = config.worker_sweep.clone() {
        return run_worker_sweep(&config, &sweep);
    }
    let value = Arc::new(vec![b'x'; config.value_bytes]);
    // `--verify --duration-secs 0` is a pure read-back pass: nothing is
    // written, so a recovery harness can check exactly what survived.
    let pure_verify = config.verify && config.duration_secs <= 0.0;
    let stats = if pure_verify {
        RunStats::empty()
    } else {
        if let Err(err) = prefill(&config, &value) {
            eprintln!(
                "camp-loadgen: prefill against {} failed: {err}",
                config.addr
            );
            return ExitCode::FAILURE;
        }
        measure(&config, &value)
    };
    let verify_stats = if config.verify {
        match verify(&config, &value) {
            Ok(found) => Some(found),
            Err(err) => {
                eprintln!(
                    "camp-loadgen: verify pass against {} failed: {err}",
                    config.addr
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let report = render_report(
        &config,
        stats.elapsed_secs,
        stats.total_ops,
        stats.hit_ratio,
        stats.errors,
        (stats.batch_retries, stats.reconnects),
        verify_stats,
        &stats.trajectory,
        &stats.get_snap,
        &stats.set_snap,
    );
    if let Err(err) = std::fs::write(&config.out, &report) {
        eprintln!("camp-loadgen: writing {} failed: {err}", config.out);
        return ExitCode::FAILURE;
    }
    println!(
        "camp-loadgen: {:.0} ops/sec over {:.2}s ({} ops, hit ratio {:.3}, {} errors)",
        stats.ops_per_sec(),
        stats.elapsed_secs,
        stats.total_ops,
        stats.hit_ratio,
        stats.errors,
    );
    println!(
        "  get: {} ops, p50 {}us p99 {}us | set: {} ops, p50 {}us p99 {}us",
        stats.get_snap.count,
        stats.get_snap.quantile(0.5),
        stats.get_snap.quantile(0.99),
        stats.set_snap.count,
        stats.set_snap.quantile(0.5),
        stats.set_snap.quantile(0.99),
    );
    if config.retries > 0 || config.expect_errors {
        println!(
            "  resilience: {} batch retries, {} reconnects",
            stats.batch_retries, stats.reconnects
        );
    }
    if let Some(v) = verify_stats {
        println!(
            "  verify: {} checked, {} mismatched, {} missing",
            v.checked, v.mismatched, v.missing
        );
    }
    println!("  report written to {}", config.out);
    if let Some(v) = verify_stats {
        if v.mismatched > 0 {
            eprintln!(
                "camp-loadgen: verify found {} mismatched values",
                v.mismatched
            );
            return ExitCode::FAILURE;
        }
        if pure_verify && v.checked == 0 {
            eprintln!("camp-loadgen: verify-only run checked no keys");
            return ExitCode::FAILURE;
        }
    }
    if !pure_verify && stats.total_ops == 0 {
        eprintln!("camp-loadgen: no operations completed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
