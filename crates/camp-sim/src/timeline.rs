//! Windowed metrics over time: how the cost-miss ratio and miss rate
//! *evolve* during a run.
//!
//! The paper's §3.1 narrates adaptation dynamics ("CAMP adapts across the
//! different trace files…") from occupancy plots; a per-window metric
//! timeline makes the same dynamics visible in the rates themselves — the
//! spike at every trace-file boundary and how quickly each policy recovers
//! from it.

use camp_policies::{CacheRequest, EvictionPolicy};
use camp_workload::Trace;

use crate::metrics::SimMetrics;

/// Metrics accumulated over one window of requests.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct WindowPoint {
    /// Index of the first request in the window.
    pub start: usize,
    /// Requests in the window (the last window may be short).
    pub len: usize,
    /// Window-local counters (cold exclusion applies trace-globally: a
    /// key's first-ever reference is cold even if its window is late).
    pub metrics: SimMetrics,
}

/// Drives `policy` through `trace`, reporting metrics per window of
/// `window` requests.
///
/// # Panics
///
/// Panics if `window` is zero.
///
/// # Examples
///
/// ```
/// use camp_policies::Lru;
/// use camp_sim::timeline::windowed_metrics;
/// use camp_workload::BgConfig;
///
/// let trace = BgConfig::paper_scaled(500, 10_000, 1).generate();
/// let mut lru = Lru::new(trace.stats().unique_bytes / 4);
/// let windows = windowed_metrics(&mut lru, &trace, 2_000);
/// assert_eq!(windows.len(), 5);
/// // Warm-up: the first window is the coldest.
/// assert!(windows[0].metrics.cold_requests >= windows[4].metrics.cold_requests);
/// ```
pub fn windowed_metrics(
    policy: &mut dyn EvictionPolicy,
    trace: &Trace,
    window: usize,
) -> Vec<WindowPoint> {
    assert!(window > 0, "window must be non-empty");
    let mut seen: std::collections::HashSet<u64> = Default::default();
    let mut evicted = Vec::new();
    let mut windows = Vec::new();
    let mut current = WindowPoint {
        start: 0,
        len: 0,
        metrics: SimMetrics::default(),
    };
    for (index, record) in trace.iter().enumerate() {
        if current.len == window {
            windows.push(current);
            current = WindowPoint {
                start: index,
                len: 0,
                metrics: SimMetrics::default(),
            };
        }
        evicted.clear();
        let outcome = policy.reference(
            CacheRequest::new(record.key, record.size, record.cost),
            &mut evicted,
        );
        current.len += 1;
        current.metrics.requests += 1;
        if seen.insert(record.key) {
            current.metrics.cold_requests += 1;
        } else {
            current.metrics.total_cost = current.metrics.total_cost.saturating_add(record.cost);
            if outcome.is_miss() {
                current.metrics.misses += 1;
                current.metrics.missed_cost =
                    current.metrics.missed_cost.saturating_add(record.cost);
            } else {
                current.metrics.hits += 1;
            }
        }
    }
    if current.len > 0 {
        windows.push(current);
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_core::{Camp, Precision};
    use camp_policies::Lru;
    use camp_workload::{evolving_workload, BgConfig, Trace};

    #[test]
    fn windows_partition_the_trace() {
        let trace = BgConfig::paper_scaled(200, 10_500, 2).generate();
        let mut lru = Lru::new(trace.stats().unique_bytes / 4);
        let windows = windowed_metrics(&mut lru, &trace, 1_000);
        assert_eq!(windows.len(), 11);
        assert_eq!(windows.iter().map(|w| w.len).sum::<usize>(), 10_500);
        assert_eq!(windows.last().unwrap().len, 500);
        for pair in windows.windows(2) {
            assert_eq!(pair[0].start + pair[0].len, pair[1].start);
        }
    }

    #[test]
    fn window_totals_match_global_simulation() {
        let trace = BgConfig::paper_scaled(300, 20_000, 9).generate();
        let capacity = trace.stats().unique_bytes / 5;
        let mut a: Camp<u64, ()> = Camp::new(capacity, Precision::Bits(5));
        let windows = windowed_metrics(&mut a, &trace, 3_000);
        let mut b: Camp<u64, ()> = Camp::new(capacity, Precision::Bits(5));
        let report = crate::simulator::simulate(&mut b, &trace);
        let total_misses: u64 = windows.iter().map(|w| w.metrics.misses).sum();
        let total_missed_cost: u64 = windows.iter().map(|w| w.metrics.missed_cost).sum();
        assert_eq!(total_misses, report.metrics.misses);
        assert_eq!(total_missed_cost, report.metrics.missed_cost);
    }

    #[test]
    fn boundary_spikes_show_in_the_timeline() {
        // Evolving workload: the window covering a trace-file boundary must
        // show a cold/miss spike relative to the settled window before it.
        let base = BgConfig::paper_scaled(1_000, 20_000, 5);
        let trace = evolving_workload(&base, 2);
        let mut lru = Lru::new(trace.stats().unique_bytes / 4);
        let windows = windowed_metrics(&mut lru, &trace, 2_000);
        // Windows 0..10 are TF1, 10..20 are TF2. The first TF2 window is
        // cold-heavy; the last TF1 window is settled.
        let settled = &windows[9];
        let boundary = &windows[10];
        assert!(
            boundary.metrics.cold_requests > settled.metrics.cold_requests * 2,
            "no cold spike at the boundary: {} vs {}",
            boundary.metrics.cold_requests,
            settled.metrics.cold_requests
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_panics() {
        let trace = Trace::default();
        let mut lru = Lru::new(10);
        let _ = windowed_metrics(&mut lru, &trace, 0);
    }
}
