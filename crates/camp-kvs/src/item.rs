//! On-chunk item encoding.
//!
//! Each chunk stores one item: a fixed header (lengths, flags, cost, expiry)
//! followed by the key bytes and the value bytes — mirroring Twemcache's
//! item layout ("the size required to store ki-vi along with some meta-data
//! header information").

/// The fixed header size in bytes.
pub const HEADER_LEN: usize = 2 + 4 + 4 + 8 + 8;

/// Reads a big-endian u64 at `at`; the caller has already bounds-checked
/// `buf` against [`HEADER_LEN`].
#[inline]
fn be_u64(buf: &[u8], at: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[at..at + 8]);
    u64::from_be_bytes(bytes)
}

/// A decoded item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item<'a> {
    /// The key bytes.
    pub key: &'a [u8],
    /// The value bytes.
    pub value: &'a [u8],
    /// Opaque client flags (memcached protocol field).
    pub flags: u32,
    /// The cost of computing this pair (the IQ framework's piggybacked
    /// service time, or a client hint).
    pub cost: u64,
    /// Absolute expiry in unix seconds; 0 = never.
    pub expires_at: u64,
}

impl<'a> Item<'a> {
    /// Total encoded size of an item with this key and value.
    #[must_use]
    pub fn encoded_len(key_len: usize, value_len: usize) -> usize {
        HEADER_LEN + key_len + value_len
    }

    /// Encodes the item into `buf` (which must be large enough).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is too small or the key exceeds 64 KiB.
    pub fn encode_into(&self, buf: &mut [u8]) {
        let need = Item::encoded_len(self.key.len(), self.value.len());
        assert!(buf.len() >= need, "buffer too small for item");
        buf[0..HEADER_LEN].copy_from_slice(&self.header());
        let key_end = HEADER_LEN + self.key.len();
        buf[HEADER_LEN..key_end].copy_from_slice(self.key);
        buf[key_end..key_end + self.value.len()].copy_from_slice(self.value);
    }

    /// Encodes the item into a reusable `Vec`, clearing it first. Unlike
    /// [`Item::encode_into`] this never zero-fills: bytes are appended, so
    /// a warm buffer costs one `memcpy` per field and no allocation once
    /// its capacity covers the working set (the store's set hot path).
    ///
    /// # Panics
    ///
    /// Panics if the key exceeds 64 KiB or the value exceeds 4 GiB.
    pub fn encode_to(&self, buf: &mut Vec<u8>) {
        let need = Item::encoded_len(self.key.len(), self.value.len());
        buf.clear();
        buf.reserve(need);
        buf.extend_from_slice(&self.header());
        buf.extend_from_slice(self.key);
        buf.extend_from_slice(self.value);
    }

    /// The encoded fixed header for this item.
    ///
    /// # Panics
    ///
    /// Panics if the key exceeds 64 KiB or the value exceeds 4 GiB — the
    /// documented contract of both encode entry points.
    fn header(&self) -> [u8; HEADER_LEN] {
        // lint:allow(unwrap-in-lib) — enforces the documented "# Panics"
        // contract; the protocol caps keys at 250 B and values at
        // --max-value-bytes, far below these encoding limits.
        let key_len = u16::try_from(self.key.len()).expect("key exceeds 64 KiB");
        // lint:allow(unwrap-in-lib) — same documented contract as above.
        let value_len = u32::try_from(self.value.len()).expect("value exceeds 4 GiB");
        let mut header = [0u8; HEADER_LEN];
        header[0..2].copy_from_slice(&key_len.to_be_bytes());
        header[2..6].copy_from_slice(&value_len.to_be_bytes());
        header[6..10].copy_from_slice(&self.flags.to_be_bytes());
        header[10..18].copy_from_slice(&self.cost.to_be_bytes());
        header[18..26].copy_from_slice(&self.expires_at.to_be_bytes());
        header
    }

    /// Decodes an item from a chunk.
    ///
    /// # Panics
    ///
    /// Panics if the chunk contents are malformed (shorter than the header
    /// claims) — chunks are only ever written by [`Item::encode_into`].
    #[must_use]
    #[inline]
    pub fn decode(buf: &'a [u8]) -> Item<'a> {
        assert!(buf.len() >= HEADER_LEN, "chunk shorter than item header");
        let key_len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
        let value_len = u32::from_be_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
        let flags = u32::from_be_bytes([buf[6], buf[7], buf[8], buf[9]]);
        let cost = be_u64(buf, 10);
        let expires_at = be_u64(buf, 18);
        let body = &buf[HEADER_LEN..];
        assert!(
            body.len() >= key_len + value_len,
            "chunk shorter than the encoded item"
        );
        let key = &body[..key_len];
        let value = &body[key_len..key_len + value_len];
        Item {
            key,
            value,
            flags,
            cost,
            expires_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let item = Item {
            key: b"user:42",
            value: b"{\"name\":\"alice\"}",
            flags: 7,
            cost: 10_000,
            expires_at: 1_900_000_000,
        };
        let mut buf = vec![0u8; Item::encoded_len(item.key.len(), item.value.len()) + 13];
        item.encode_into(&mut buf);
        let decoded = Item::decode(&buf);
        assert_eq!(decoded, item);
    }

    #[test]
    fn empty_value_roundtrip() {
        let item = Item {
            key: b"k",
            value: b"",
            flags: 0,
            cost: 0,
            expires_at: 0,
        };
        let mut buf = vec![0u8; Item::encoded_len(1, 0)];
        item.encode_into(&mut buf);
        assert_eq!(Item::decode(&buf), item);
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn undersized_buffer_panics() {
        let item = Item {
            key: b"key",
            value: b"value",
            flags: 0,
            cost: 0,
            expires_at: 0,
        };
        let mut buf = vec![0u8; 10];
        item.encode_into(&mut buf);
    }

    #[test]
    fn encode_to_matches_encode_into() {
        let item = Item {
            key: b"user:42",
            value: b"payload-bytes",
            flags: 3,
            cost: 77,
            expires_at: 9,
        };
        let need = Item::encoded_len(item.key.len(), item.value.len());
        let mut flat = vec![0u8; need];
        item.encode_into(&mut flat);
        // A warm (dirty) reusable buffer must produce identical bytes.
        let mut reused = vec![0xAAu8; 300];
        item.encode_to(&mut reused);
        assert_eq!(reused, flat);
    }

    #[test]
    fn encoded_len_matches_layout() {
        assert_eq!(Item::encoded_len(0, 0), HEADER_LEN);
        assert_eq!(Item::encoded_len(3, 5), HEADER_LEN + 8);
    }
}
