//! Property tests for the KVS substrate: the protocol parser never panics,
//! the store matches a reference model under arbitrary operation sequences,
//! and the two allocators conserve memory.

use camp_core::Precision;
use camp_kvs::buddy::BuddyAllocator;
use camp_kvs::protocol::parse_command;
use camp_kvs::slab::{SlabAllocator, SlabConfig};
use camp_kvs::store::{EvictionMode, Store, StoreConfig, StoreError};
use proptest::prelude::*;

// ---------------------------------------------------------------- protocol

proptest! {
    /// Arbitrary byte lines never panic the parser — they parse or they
    /// produce a protocol error.
    #[test]
    fn parser_never_panics(line in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = parse_command(&line);
    }

    /// Lines without interior newlines round-trip through the grammar:
    /// every successfully parsed storage command reports a sane byte count
    /// and a valid key.
    #[test]
    fn parsed_set_headers_are_sane(
        key in "[a-zA-Z0-9:_-]{1,64}",
        flags in any::<u32>(),
        exptime in any::<u32>(),
        bytes in 0usize..100_000,
    ) {
        let line = format!("set {key} {flags} {exptime} {bytes}");
        match parse_command(line.as_bytes()).expect("well-formed set must parse") {
            camp_kvs::protocol::Command::Set { header } => {
                prop_assert_eq!(header.key, key.into_bytes());
                prop_assert_eq!(header.flags, flags);
                prop_assert_eq!(header.exptime, u64::from(exptime));
                prop_assert_eq!(header.bytes, bytes);
                prop_assert_eq!(header.cost_hint, None);
            }
            other => prop_assert!(false, "unexpected parse: {other:?}"),
        }
    }
}

// ------------------------------------------------------------------- store

#[derive(Debug, Clone)]
enum StoreOp {
    Set { key: u8, value_len: u16, cost: u64 },
    Get(u8),
    Delete(u8),
    Incr(u8),
    Add { key: u8, value_len: u16 },
    FlushAll,
}

fn store_ops() -> impl Strategy<Value = Vec<StoreOp>> {
    prop::collection::vec(
        prop_oneof![
            5 => (any::<u8>(), 0u16..2_000, 0u64..10_000)
                .prop_map(|(key, value_len, cost)| StoreOp::Set { key, value_len, cost }),
            4 => any::<u8>().prop_map(StoreOp::Get),
            2 => any::<u8>().prop_map(StoreOp::Delete),
            1 => any::<u8>().prop_map(StoreOp::Incr),
            1 => (any::<u8>(), 0u16..500).prop_map(|(key, value_len)| StoreOp::Add { key, value_len }),
            1 => Just(StoreOp::FlushAll),
        ],
        0..200,
    )
}

proptest! {
    /// The store agrees with a HashMap model on membership and values, for
    /// both eviction modes, under arbitrary op sequences — with the model
    /// pruned by whatever the store evicted (evictions are policy choices,
    /// not correctness violations).
    #[test]
    fn store_matches_model(ops in store_ops(), lru in any::<bool>()) {
        let eviction = if lru {
            EvictionMode::Lru
        } else {
            EvictionMode::Camp(Precision::Bits(5))
        };
        let mut store = Store::new(StoreConfig {
            slab: SlabConfig::small(8 * 1024, 8),
            eviction,
        });
        let mut model: std::collections::HashMap<u8, Vec<u8>> = Default::default();
        for op in &ops {
            match *op {
                StoreOp::Set { key, value_len, cost } => {
                    let value = vec![key; value_len as usize];
                    match store.set(&[key], &value, 0, 0, cost) {
                        Ok(()) => {
                            model.insert(key, value);
                        }
                        Err(StoreError::ValueTooLarge { .. }) => {
                            // Unstorable: model unchanged, store unchanged.
                        }
                        Err(StoreError::OutOfMemory) => {
                            prop_assert!(false, "8 slabs cannot OOM on 2KB values");
                        }
                    }
                }
                StoreOp::Add { key, value_len } => {
                    let value = vec![key; value_len as usize];
                    let was_resident = store.contains(&[key]);
                    if let Ok(stored) = store.add(&[key], &value, 0, 0, 1) {
                        prop_assert_eq!(
                            stored,
                            !was_resident,
                            "add must store exactly when the key was absent"
                        );
                        if stored {
                            model.insert(key, value);
                        }
                    }
                }
                StoreOp::Get(key) => {
                    let got = store.get(&[key]);
                    if let Some(result) = &got {
                        let want = model.get(&key);
                        prop_assert_eq!(
                            Some(&result.value),
                            want,
                            "store returned a value the model disagrees with"
                        );
                    }
                    // A model hit with a store miss means the store evicted
                    // the key: prune the model.
                    if got.is_none() {
                        model.remove(&key);
                    }
                }
                StoreOp::Delete(key) => {
                    store.delete(&[key]);
                    model.remove(&key);
                }
                StoreOp::Incr(key) => {
                    if let Some(next) = store.incr(&[key], 1) {
                        model.insert(key, next.to_string().into_bytes());
                    }
                }
                StoreOp::FlushAll => {
                    store.flush_all();
                    model.clear();
                    prop_assert!(store.is_empty());
                }
            }
            // Evictions may have removed model keys; len is bounded by it.
            prop_assert!(store.len() <= u8::MAX as usize + 1);
        }
        // Every store resident must be model-known (the converse can fail
        // through evictions, which only shrink the store).
        for key in 0..=u8::MAX {
            if store.contains(&[key]) {
                // Residents the model evicted are impossible: only
                // store evictions prune the model, and those also remove
                // store residency.
                prop_assert!(
                    model.contains_key(&key),
                    "store holds {key} which the model does not"
                );
            }
        }
    }
}

// -------------------------------------------------------------- allocators

proptest! {
    /// The slab allocator conserves chunks: every allocated chunk is
    /// distinct, frees recycle, and item counts match.
    #[test]
    fn slab_allocator_conserves_chunks(
        sizes in prop::collection::vec(1u32..3_000, 1..200),
    ) {
        let mut slabs = SlabAllocator::new(SlabConfig::small(16 * 1024, 4));
        let mut live = std::collections::HashSet::new();
        for (i, &size) in sizes.iter().enumerate() {
            match slabs.allocate(size) {
                Ok(chunk) => {
                    prop_assert!(live.insert(chunk), "chunk handed out twice");
                }
                Err(_) => {
                    // Free half the live chunks and continue.
                    if i % 2 == 0 {
                        let drain: Vec<_> = live.iter().copied().take(5).collect();
                        for chunk in drain {
                            live.remove(&chunk);
                            slabs.free(chunk);
                        }
                    }
                }
            }
            let census_items: u64 = slabs.class_census().iter().map(|&(_, _, n)| n).sum();
            prop_assert_eq!(census_items as usize, live.len());
        }
    }

    /// The buddy allocator conserves bytes exactly and coalesces fully.
    #[test]
    fn buddy_conserves_bytes(
        ops in prop::collection::vec((any::<bool>(), 1u32..5_000), 1..300),
    ) {
        let arena = 1u32 << 15;
        let mut buddy = BuddyAllocator::new(arena, 64);
        let mut live = Vec::new();
        for &(free_first, size) in &ops {
            if free_first && !live.is_empty() {
                let block = live.swap_remove(live.len() / 2);
                buddy.free(block);
            } else if let Ok(block) = buddy.allocate(size) {
                live.push(block);
            }
            let block_bytes: u64 = live
                .iter()
                .map(|b| u64::from(buddy.block_size(b.order())))
                .sum();
            prop_assert_eq!(buddy.live_bytes(), block_bytes);
            prop_assert_eq!(buddy.live_blocks(), live.len());
        }
        for block in live {
            buddy.free(block);
        }
        prop_assert_eq!(buddy.live_bytes(), 0);
        // Full coalescing: the whole arena is allocatable again.
        prop_assert!(buddy.allocate(arena).is_ok());
    }
}
