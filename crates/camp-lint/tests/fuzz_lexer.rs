//! Seeded fuzz of the lexer against mutated slices of the real workspace.
//!
//! The lexer's contract is brutal on purpose: it must never panic on
//! arbitrary bytes, and its token spans must exactly tile the input —
//! `tokens[0].start == 0`, every `end` equals the next `start`, and the
//! last `end` equals the input length. Random slicing splits string
//! literals, comments, and raw-string hash fences at every possible
//! boundary; random byte mutation injects invalid UTF-8 and unbalanced
//! quotes. Real workspace sources are the corpus so the mutations start
//! from realistic token streams rather than noise.

use std::path::Path;

use camp_core::rng::Rng64;
use camp_lint::lexer::{lex, Token};
use camp_lint::walk_workspace;

const ROUNDS: usize = 20_000;
const MAX_SLICE: usize = 2_048;
const SEED: u64 = 0x1E3C_2014;

fn assert_tiles(src: &[u8], tokens: &[Token], what: &str) {
    let mut pos = 0;
    for t in tokens {
        assert_eq!(t.start, pos, "{what}: gap or overlap before byte {pos}");
        assert!(t.end > t.start, "{what}: empty token at byte {pos}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "{what}: spans stop short of the input end");
}

fn workspace_root() -> &'static Path {
    // crates/camp-lint -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("camp-lint sits two levels below the workspace root")
}

#[test]
fn mutated_slices_of_real_sources_lex_without_panic_and_tile() {
    let corpus = walk_workspace(workspace_root()).expect("walk workspace");
    assert!(
        corpus.len() >= 50,
        "corpus unexpectedly small: {} files",
        corpus.len()
    );
    let mut rng = Rng64::seed_from_u64(SEED);
    let mut scratch = Vec::with_capacity(MAX_SLICE);
    for round in 0..ROUNDS {
        let file = &corpus[rng.range_usize(0, corpus.len())];
        let bytes = &file.bytes;
        let (start, end) = if bytes.is_empty() {
            (0, 0)
        } else {
            let a = rng.range_usize(0, bytes.len() + 1);
            let b = rng.range_usize(0, bytes.len() + 1);
            (a.min(b), a.max(b).min(a.min(b) + MAX_SLICE))
        };
        scratch.clear();
        scratch.extend_from_slice(&bytes[start..end]);
        // Half the rounds mutate 1..8 bytes to arbitrary values, so the
        // lexer also sees invalid UTF-8, NULs, and unbalanced delimiters.
        if !scratch.is_empty() && rng.chance(0.5) {
            for _ in 0..rng.range_usize(1, 9) {
                let at = rng.range_usize(0, scratch.len());
                scratch[at] = (rng.next_u64() & 0xFF) as u8;
            }
        }
        let tokens = lex(&scratch);
        assert_tiles(
            &scratch,
            &tokens,
            &format!("round {round} ({}:{start}..{end})", file.rel_path),
        );
    }
}

#[test]
fn every_full_workspace_source_tiles_exactly() {
    let corpus = walk_workspace(workspace_root()).expect("walk workspace");
    for file in &corpus {
        let tokens = lex(&file.bytes);
        assert_tiles(&file.bytes, &tokens, &file.rel_path);
    }
}

#[test]
fn all_single_and_paired_bytes_lex_without_panic() {
    for a in 0..=255u8 {
        let one = [a];
        assert_tiles(&one, &lex(&one), "single byte");
        // Pair each byte with the delimiters that drive lexer mode changes.
        for b in [b'"', b'\'', b'r', b'#', b'/', b'*', b'\\', 0, 0xFF] {
            let two = [a, b];
            assert_tiles(&two, &lex(&two), "byte pair");
            let rev = [b, a];
            assert_tiles(&rev, &lex(&rev), "byte pair");
        }
    }
}
