//! The per-connection protocol state machine: nonblocking buffers in,
//! nonblocking buffers out, no socket in sight.
//!
//! [`Connection`] is the reactor's replacement for the legacy
//! thread-per-connection `handle_connection` loop, restructured as a
//! run-to-completion state machine over two byte buffers: the reactor
//! appends whatever the socket had into the read buffer
//! ([`Connection::fill_from`]), [`Connection::process`] consumes complete
//! commands from it and appends replies to the write buffer, and the
//! reactor flushes that buffer back to the socket
//! ([`Connection::flush_to`]) — once per processing round, so a pipelined
//! burst of N commands still produces one syscall-level write, preserving
//! PR 3's flush-coalescing behaviour by construction.
//!
//! Because input arrives in arbitrary fragments, the machine never
//! consumes a command until every byte it needs is present: a `set`
//! header line is left unconsumed (and re-parsed on the next readiness
//! event — rare, so the re-parse is cheap) until the full data block and
//! its CRLF terminator have arrived. That is what keeps PR 4's chaos
//! invariant intact under `EAGAIN`/short reads: the fault decision for a
//! storage command fires *after* the complete data block, exactly as the
//! legacy blocking path ordered it, so an injected error or delay can
//! never desynchronize the stream.
//!
//! Lifecycle semantics are expressed as data, not threads: a chaos delay
//! parks the connection behind [`Step::Delayed`] (the reactor schedules a
//! timer and stops reading), idle eviction and drain close-outs are
//! decided by the reactor's timer wheel against [`Connection::last_complete`]
//! and [`Connection::drain_closable`], and `--max-conns` rejections are
//! ordinary connections born with a preloaded error reply and
//! `close_after_flush` set.

use std::io::{self, Read, Write};
use std::time::Instant;

use camp_telemetry::{kvlog, LogLevel, RequestSpan};

use crate::fault::{FaultAction, FaultState};
use crate::metrics::{CmdKind, FaultKind, RejectCause};
use crate::protocol::{parse_command_limited, Command};
use crate::server::{cmd_kind, execute, Shared};

/// Bytes added to the read buffer per `read` call while filling.
const READ_CHUNK: usize = 16 * 1024;
/// Cap on bytes ingested per fill round, so one firehose connection
/// cannot starve its worker's other connections.
const READ_ROUND_MAX: usize = 256 * 1024;
/// Consumed-prefix threshold past which the read buffer is compacted.
const COMPACT_AT: usize = 4 * 1024;
/// Buffers larger than this are shrunk once fully drained, so a single
/// 1 MiB `set` does not pin a megabyte per connection forever.
const SHRINK_AT: usize = 256 * 1024;
const SHRINK_TO: usize = 16 * 1024;
/// Cap on spans awaiting their flushed stamp; a write-paused connection
/// drops further spans rather than growing without bound.
const PENDING_SPAN_CAP: usize = 4096;

/// What [`Connection::process`] wants from the reactor next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// All buffered input consumed (or an incomplete command is waiting
    /// for more bytes): keep read interest.
    NeedRead,
    /// A chaos delay is in force: stop reading, schedule a resume timer
    /// for the instant, then call `process` again.
    Delayed(Instant),
    /// The connection is done (quit, EOF, fatal error, drop fault):
    /// flush what the write buffer holds, then close.
    Close,
}

/// What a [`Connection::fill_from`] round observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fill {
    /// The socket is drained (or the round cap was hit); more may come.
    Open,
    /// The peer closed its write half; `process` runs with EOF semantics.
    Eof,
}

/// One client connection's entire protocol state.
#[derive(Debug)]
pub(crate) struct Connection {
    /// Read buffer; `buf[pos..]` is unconsumed input.
    buf: Vec<u8>,
    pos: usize,
    /// Write buffer; `out[out_pos..]` is unflushed output.
    out: Vec<u8>,
    out_pos: usize,
    /// Reusable get-serialization scratch (same role as legacy
    /// `response`): VALUE blocks accumulate here before one bulk append.
    response: Vec<u8>,
    faults: Option<FaultState>,
    /// A Delay was already decided for the currently-pending command;
    /// on resume, execute without re-rolling the fault RNG.
    fault_decided: bool,
    /// In-force chaos delay; cleared by `process` once the instant passes.
    pub(crate) delayed_until: Option<Instant>,
    /// The idle clock: time of the last *completed* command.
    pub(crate) last_complete: Instant,
    /// Close once the write buffer drains (quit, eviction, rejection...).
    pub(crate) close_after_flush: bool,
    /// The peer closed its write half (sticky).
    pub(crate) peer_eof: bool,
    /// Whether this connection was counted in `conn_count` and the
    /// opened/closed metrics (max-conns rejections are not).
    pub(crate) counted: bool,
    /// Server-assigned connection id (span attribution).
    id: u64,
    /// When the most recent socket fragment arrived (the `buffered` span
    /// phase for commands completed by that fragment).
    buffered_at: Option<Instant>,
    /// Spans for executed commands, awaiting the flushed stamp that the
    /// reactor applies once their replies reach the socket.
    pending_spans: Vec<RequestSpan>,
}

impl Connection {
    /// `id` seeds the connection's deterministic fault stream, exactly as
    /// the legacy per-thread path did.
    pub(crate) fn new(id: u64, shared: &Shared) -> Connection {
        Connection {
            buf: Vec::new(),
            pos: 0,
            out: Vec::new(),
            out_pos: 0,
            response: Vec::new(),
            faults: shared
                .fault_plan
                .as_ref()
                .map(|plan| FaultState::new(plan, id)),
            fault_decided: false,
            delayed_until: None,
            last_complete: Instant::now(),
            close_after_flush: false,
            peer_eof: false,
            counted: true,
            id,
            buffered_at: None,
            pending_spans: Vec::new(),
        }
    }

    /// A connection rejected at the cap: born with the overload error
    /// queued and `close_after_flush` set, uncounted — the reactor flushes
    /// the reply and closes without ever reading a byte.
    pub(crate) fn rejected(shared: &Shared) -> Connection {
        shared.metrics.record_rejected(RejectCause::MaxConns);
        kvlog!(
            LogLevel::Warn,
            "connection_rejected",
            cause = "max_conns",
            limit = shared.max_conns,
        );
        let mut conn = Connection::new(0, shared);
        conn.out
            .extend_from_slice(b"SERVER_ERROR too many connections\r\n");
        conn.close_after_flush = true;
        conn.counted = false;
        conn
    }

    /// Appends bytes to the read buffer (test seam; `fill_from` is the
    /// socket-facing equivalent).
    #[cfg(test)]
    pub(crate) fn ingest(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        self.buffered_at = Some(Instant::now());
    }

    /// Whether unflushed output remains.
    pub(crate) fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Roughly how much unflushed output is queued (drives the reactor's
    /// read-pause high-water mark).
    pub(crate) fn pending_out_len(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Whether a drain may close this connection now: nothing buffered in
    /// either direction and no command in flight. A connection holding a
    /// partial command line is *not* closable — same as the legacy path,
    /// where only reads blocked with an empty line buffer noticed the
    /// drain flag — and gets severed at the deadline instead.
    pub(crate) fn drain_closable(&self) -> bool {
        self.pos >= self.buf.len() && !self.has_pending_out() && self.delayed_until.is_none()
    }

    /// Reads the socket until it would block (or the per-round cap), never
    /// blocking. Tolerates short reads by construction: whatever fragment
    /// arrives is appended and `process` decides whether it adds up to a
    /// complete command yet.
    ///
    /// # Errors
    ///
    /// Propagates hard socket errors (reset, aborted); `WouldBlock` is a
    /// normal outcome, not an error.
    pub(crate) fn fill_from(&mut self, stream: &mut impl Read) -> io::Result<Fill> {
        let mut round = 0;
        loop {
            let len = self.buf.len();
            self.buf.resize(len + READ_CHUNK, 0);
            match stream.read(&mut self.buf[len..]) {
                Ok(0) => {
                    self.buf.truncate(len);
                    self.peer_eof = true;
                    return Ok(Fill::Eof);
                }
                Ok(n) => {
                    self.buf.truncate(len + n);
                    self.buffered_at = Some(Instant::now());
                    round += n;
                    if round >= READ_ROUND_MAX {
                        return Ok(Fill::Open);
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    self.buf.truncate(len);
                    return Ok(Fill::Open);
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {
                    self.buf.truncate(len);
                }
                Err(err) => {
                    self.buf.truncate(len);
                    return Err(err);
                }
            }
        }
    }

    /// Writes the unflushed output to the socket, stopping at `EAGAIN`.
    /// Returns true once the buffer is fully drained.
    ///
    /// # Errors
    ///
    /// Propagates hard socket errors; a zero-length write surfaces as
    /// `WriteZero`.
    pub(crate) fn flush_to(&mut self, stream: &mut impl Write) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => return Err(err),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        if self.out.capacity() > SHRINK_AT {
            self.out.shrink_to(SHRINK_TO);
        }
        Ok(true)
    }

    /// Stamps the `flushed` phase on every span whose reply just reached
    /// the socket and records them into `ring` of the flight recorder.
    /// The reactor calls this after a full write-buffer drain (and once
    /// more at close, so spans stuck behind a slow reader are not lost).
    pub(crate) fn finish_spans(&mut self, shared: &Shared, ring: usize) {
        if self.pending_spans.is_empty() {
            return;
        }
        let flushed_us = shared.recorder.micros_since_boot(Instant::now());
        for mut span in self.pending_spans.drain(..) {
            span.flushed_us = flushed_us.max(span.executed_us);
            shared.recorder.record_span(ring, &span);
        }
    }

    /// Evicts the connection for exceeding the idle deadline: explicit
    /// error reply, then close once it flushes (legacy `evict_idle`).
    pub(crate) fn evict_idle(&mut self, shared: &Shared) {
        shared.metrics.record_rejected(RejectCause::IdleTimeout);
        kvlog!(
            LogLevel::Info,
            "idle_connection_evicted",
            timeout_ms = shared.idle_timeout.as_millis(),
        );
        self.out.extend_from_slice(b"SERVER_ERROR idle timeout\r\n");
        self.close_after_flush = true;
    }

    /// Consumes every complete command currently buffered, appending the
    /// replies to the write buffer, and says what the reactor should do
    /// next. Run-to-completion: one call drains everything actionable.
    pub(crate) fn process(&mut self, shared: &Shared) -> Step {
        if self.close_after_flush {
            return Step::Close;
        }
        loop {
            // An in-force chaos delay pauses the whole connection —
            // pipelined commands behind the delayed one wait, exactly as
            // the legacy thread slept.
            if let Some(until) = self.delayed_until {
                if Instant::now() < until {
                    return Step::Delayed(until);
                }
                self.delayed_until = None;
            }
            if self.pos >= self.buf.len() {
                self.compact();
                return if self.peer_eof {
                    Step::Close
                } else {
                    Step::NeedRead
                };
            }
            let newline = self.buf[self.pos..].iter().position(|&b| b == b'\n');
            let (line_end, line_wire) = match newline {
                Some(n) => (self.pos + n, n + 1),
                // No newline yet: with the peer gone, hand the partial
                // line to the parser (what an un-timed blocking read did
                // at EOF); otherwise wait for the rest.
                None if self.peer_eof => (self.buf.len(), self.buf.len() - self.pos),
                None => {
                    self.compact();
                    return Step::NeedRead;
                }
            };
            let mut line = &self.buf[self.pos..line_end];
            while let [rest @ .., b'\r' | b'\n'] = line {
                line = rest;
            }
            if line.is_empty() {
                self.pos += line_wire;
                continue;
            }
            let parsed = parse_command_limited(line, shared.max_value_len);
            match parsed {
                Ok(Command::Quit) => {
                    self.pos += line_wire;
                    return Step::Close;
                }
                Ok(command) => {
                    let kind = cmd_kind(&command);
                    // For storage commands the header line is not consumed
                    // until the full data block (+CRLF) is buffered: on a
                    // short read we leave everything in place and re-parse
                    // when more bytes arrive. The fault decision therefore
                    // always happens after the complete block — PR 4's
                    // invariant, now robust to arbitrary fragmentation.
                    let (block, consumed, wire_bytes): (&[u8], usize, u64) = match &command {
                        Command::Set { header } => {
                            let needed = line_wire + header.bytes + 2;
                            if self.buf.len() - self.pos < needed {
                                if self.peer_eof {
                                    // Mid-block EOF: nothing is stored and
                                    // nothing more can be parsed (legacy
                                    // UnexpectedEof).
                                    return Step::Close;
                                }
                                self.compact();
                                return Step::NeedRead;
                            }
                            let start = self.pos + line_wire;
                            let terminator = &self.buf[start + header.bytes..self.pos + needed];
                            if terminator != b"\r\n" {
                                // The stream is desynchronized; reading on
                                // would misparse data as commands (legacy
                                // InvalidData: close the connection).
                                kvlog!(
                                    LogLevel::Debug,
                                    "connection_error",
                                    error = "data block not terminated by CRLF",
                                );
                                return Step::Close;
                            }
                            (
                                &self.buf[start..start + header.bytes],
                                needed,
                                (line_wire + header.bytes + 2) as u64,
                            )
                        }
                        _ => (&[], line_wire, line_wire as u64),
                    };
                    shared.metrics.record_bytes(kind, wire_bytes);
                    // Chaos: decided once per command, after its data
                    // block; a Delay stashes the fact that the decision
                    // already happened so the resume does not re-roll the
                    // per-connection RNG (determinism parity with the
                    // sleeping legacy thread).
                    if !self.fault_decided {
                        if let (Some(plan), Some(state)) =
                            (shared.fault_plan.as_ref(), self.faults.as_mut())
                        {
                            match state.decide(plan) {
                                FaultAction::None => {}
                                FaultAction::Delay(dur) => {
                                    shared.metrics.record_fault(FaultKind::Delay);
                                    let until = Instant::now() + dur;
                                    self.fault_decided = true;
                                    self.delayed_until = Some(until);
                                    return Step::Delayed(until);
                                }
                                FaultAction::Error => {
                                    shared.metrics.record_fault(FaultKind::Error);
                                    self.out
                                        .extend_from_slice(b"SERVER_ERROR injected fault\r\n");
                                    self.last_complete = Instant::now();
                                    self.pos += consumed;
                                    continue;
                                }
                                FaultAction::Drop => {
                                    // Vanish pre-response; replies already
                                    // buffered still flush, like the legacy
                                    // BufWriter did on drop.
                                    shared.metrics.record_fault(FaultKind::Drop);
                                    return Step::Close;
                                }
                            }
                        }
                    }
                    self.fault_decided = false;
                    let started = Instant::now();
                    // Infallible: the sink is a Vec. `unwrap_or` (not
                    // unwrap) keeps the request path panic-free per the
                    // workspace rule; the false arm is unreachable.
                    let keep = execute(&command, block, &mut self.out, &mut self.response, shared)
                        .unwrap_or(false);
                    let executed_at = Instant::now();
                    let micros =
                        u64::try_from((executed_at - started).as_micros()).unwrap_or(u64::MAX);
                    shared.metrics.record_latency(kind, micros);
                    if self.pending_spans.len() < PENDING_SPAN_CAP {
                        let recorder = &shared.recorder;
                        self.pending_spans.push(RequestSpan {
                            conn_id: self.id,
                            cmd: kind.code(),
                            wire_bytes,
                            buffered_us: recorder
                                .micros_since_boot(self.buffered_at.unwrap_or(started)),
                            parsed_us: recorder.micros_since_boot(started),
                            executed_us: recorder.micros_since_boot(executed_at),
                            flushed_us: 0, // stamped by `finish_spans`
                        });
                    }
                    self.last_complete = executed_at;
                    self.pos += consumed;
                    if !keep {
                        return Step::Close;
                    }
                }
                Err(err) => {
                    shared
                        .metrics
                        .record_bytes(CmdKind::Other, line_wire as u64);
                    shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    kvlog!(LogLevel::Debug, "protocol_error", error = err);
                    self.out.extend_from_slice(err.to_string().as_bytes());
                    self.out.extend_from_slice(b"\r\n");
                    self.pos += line_wire;
                    if err.is_fatal() {
                        // The refused data block is still on the wire;
                        // reading on would desync (legacy: close). Today
                        // the only fatal parse error is an oversize value.
                        shared.metrics.record_rejected(RejectCause::ValueTooLarge);
                        return Step::Close;
                    }
                    self.last_complete = Instant::now();
                }
            }
        }
    }

    /// Drops the consumed prefix once it is worth the memmove, and returns
    /// oversized buffers to a modest footprint when fully drained.
    fn compact(&mut self) {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.buf.capacity() > SHRINK_AT {
                self.buf.shrink_to(SHRINK_TO);
            }
        } else if self.pos >= COMPACT_AT {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::metrics::FaultKind;
    use crate::server::ServerOptions;
    use crate::slab::SlabConfig;
    use crate::store::{EvictionMode, StoreConfig};
    use camp_core::Precision;
    use std::time::Duration;

    fn test_shared(fault_plan: Option<FaultPlan>) -> Shared {
        let mut options = ServerOptions::new(StoreConfig {
            slab: SlabConfig::small(64 * 1024, 8),
            eviction: EvictionMode::Camp(Precision::Bits(5)),
        });
        options.fault_plan = fault_plan;
        Shared::new(&options)
    }

    fn flushed(conn: &mut Connection) -> Vec<u8> {
        let mut sink = Vec::new();
        conn.flush_to(&mut sink).expect("vec sink");
        sink
    }

    #[test]
    fn pipelined_burst_yields_one_coalesced_reply_buffer() {
        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        conn.ingest(b"set a 0 0 3\r\nAAA\r\nset b 0 0 3\r\nBBB\r\nget a b\r\n");
        assert_eq!(conn.process(&shared), Step::NeedRead);
        assert_eq!(
            flushed(&mut conn),
            b"STORED\r\nSTORED\r\nVALUE a 0 3\r\nAAA\r\nVALUE b 0 3\r\nBBB\r\nEND\r\n".to_vec()
        );
    }

    #[test]
    fn set_survives_arbitrary_fragmentation() {
        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        // Byte-at-a-time: the worst-case short-read stream.
        let wire = b"set frag 7 0 5\r\nhello\r\nget frag\r\n";
        for &byte in &wire[..wire.len() - 1] {
            conn.ingest(&[byte]);
            assert_eq!(conn.process(&shared), Step::NeedRead);
        }
        conn.ingest(&wire[wire.len() - 1..]);
        assert_eq!(conn.process(&shared), Step::NeedRead);
        assert_eq!(
            flushed(&mut conn),
            b"STORED\r\nVALUE frag 7 5\r\nhello\r\nEND\r\n".to_vec()
        );
    }

    #[test]
    fn chaos_decision_waits_for_the_full_data_block() {
        // error_rate=1: every decided command faults. The decision must
        // not happen while the data block is still partial.
        let plan: FaultPlan = "err=1.0,seed=7".parse().expect("plan");
        let shared = test_shared(Some(plan));
        let mut conn = Connection::new(3, &shared);
        conn.ingest(b"set k 0 0 5\r\nhel");
        assert_eq!(conn.process(&shared), Step::NeedRead);
        let injected = shared.metrics.faults_snapshot();
        assert_eq!(
            injected.iter().map(|(_, n)| n).sum::<u64>(),
            0,
            "{injected:?}"
        );
        conn.ingest(b"lo\r\n");
        assert_eq!(conn.process(&shared), Step::NeedRead);
        assert_eq!(
            flushed(&mut conn),
            b"SERVER_ERROR injected fault\r\n".to_vec()
        );
        let injected = shared.metrics.faults_snapshot();
        assert_eq!(
            injected.iter().map(|(_, n)| n).sum::<u64>(),
            1,
            "{injected:?}"
        );
    }

    #[test]
    fn delay_fault_parks_and_resumes_without_rerolling() {
        let plan: FaultPlan = "delay=2ms@1.0,seed=9".parse().expect("plan");
        let shared = test_shared(Some(plan));
        let mut conn = Connection::new(4, &shared);
        conn.ingest(b"set k 0 0 1\r\nx\r\n");
        let until = match conn.process(&shared) {
            Step::Delayed(until) => until,
            other => panic!("expected Delayed, got {other:?}"),
        };
        // Exactly one Delay recorded at decision time, none on resume.
        let delays = |shared: &Shared| {
            shared
                .metrics
                .faults_snapshot()
                .iter()
                .find(|(kind, _)| *kind == FaultKind::Delay.name())
                .map_or(0, |(_, n)| *n)
        };
        assert_eq!(delays(&shared), 1);
        std::thread::sleep(
            until.saturating_duration_since(Instant::now()) + Duration::from_millis(1),
        );
        assert_eq!(conn.process(&shared), Step::NeedRead);
        assert_eq!(delays(&shared), 1);
        assert_eq!(flushed(&mut conn), b"STORED\r\n".to_vec());
    }

    #[test]
    fn eof_hands_the_partial_final_line_to_the_parser() {
        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        conn.ingest(b"version");
        conn.peer_eof = true;
        assert_eq!(conn.process(&shared), Step::Close);
        let reply = flushed(&mut conn);
        assert!(reply.starts_with(b"VERSION camp-kvs/"), "{reply:?}");
    }

    #[test]
    fn eof_mid_data_block_stores_nothing() {
        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        conn.ingest(b"set gone 0 0 10\r\nhalf");
        conn.peer_eof = true;
        assert_eq!(conn.process(&shared), Step::Close);
        assert_eq!(shared.store.len(), 0);
    }

    #[test]
    fn bad_block_terminator_closes_the_connection() {
        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        conn.ingest(b"set a 0 0 3\r\nAAAXXget a\r\n");
        assert_eq!(conn.process(&shared), Step::Close);
    }

    #[test]
    fn oversize_set_is_fatal_and_counted() {
        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        let line = format!("set big 0 0 {}\r\n", shared.max_value_len + 1);
        conn.ingest(line.as_bytes());
        assert_eq!(conn.process(&shared), Step::Close);
        let reply = flushed(&mut conn);
        assert!(
            reply.starts_with(b"SERVER_ERROR object too large"),
            "{reply:?}"
        );
        let rejected = shared.metrics.rejected_snapshot();
        assert!(
            rejected
                .iter()
                .any(|(c, n)| *c == "value_too_large" && *n == 1),
            "{rejected:?}"
        );
    }

    #[test]
    fn quit_closes_after_flush() {
        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        conn.ingest(b"version\r\nquit\r\nget never-processed\r\n");
        assert_eq!(conn.process(&shared), Step::Close);
        let reply = flushed(&mut conn);
        assert!(reply.starts_with(b"VERSION"), "{reply:?}");
        assert!(!reply.windows(3).any(|w| w == b"END"), "{reply:?}");
    }

    #[test]
    fn fill_tolerates_short_reads_and_flush_tolerates_short_writes() {
        /// Reads the script in `step`-byte sips; writes accept `step`
        /// bytes then block once.
        struct Trickle {
            script: Vec<u8>,
            step: usize,
            wrote: Vec<u8>,
            block_next: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.script.is_empty() {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let n = self.step.min(self.script.len()).min(buf.len());
                buf[..n].copy_from_slice(&self.script[..n]);
                self.script.drain(..n);
                Ok(n)
            }
        }
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.block_next {
                    self.block_next = false;
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let n = self.step.min(buf.len());
                self.wrote.extend_from_slice(&buf[..n]);
                self.block_next = true;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        let mut io = Trickle {
            script: b"set s 0 0 4\r\nbody\r\nget s\r\n".to_vec(),
            step: 3,
            wrote: Vec::new(),
            block_next: false,
        };
        // Drive fill/process until the input is exhausted.
        while !io.script.is_empty() {
            assert_eq!(conn.fill_from(&mut io).expect("fill"), Fill::Open);
            conn.process(&shared);
        }
        assert_eq!(conn.process(&shared), Step::NeedRead);
        // Drive the partial-write loop until fully flushed.
        let mut rounds = 0;
        while !conn.flush_to(&mut io).expect("flush") {
            rounds += 1;
            assert!(rounds < 100, "flush failed to make progress");
        }
        assert_eq!(
            io.wrote,
            b"STORED\r\nVALUE s 0 4\r\nbody\r\nEND\r\n".to_vec()
        );
        assert!(rounds > 0, "short writes never surfaced");
    }

    #[test]
    fn rejected_connection_carries_the_overload_reply() {
        let shared = test_shared(None);
        let mut conn = Connection::rejected(&shared);
        assert!(conn.close_after_flush);
        assert!(!conn.counted);
        assert_eq!(conn.process(&shared), Step::Close);
        assert_eq!(
            flushed(&mut conn),
            b"SERVER_ERROR too many connections\r\n".to_vec()
        );
        let rejected = shared.metrics.rejected_snapshot();
        assert!(
            rejected.iter().any(|(c, n)| *c == "max_conns" && *n == 1),
            "{rejected:?}"
        );
    }

    #[test]
    fn drain_closable_tracks_buffered_state() {
        let shared = test_shared(None);
        let mut conn = Connection::new(1, &shared);
        assert!(conn.drain_closable());
        // A partial line in flight blocks the drain close (severed later).
        conn.ingest(b"get par");
        assert_eq!(conn.process(&shared), Step::NeedRead);
        assert!(!conn.drain_closable());
        conn.ingest(b"tial\r\n");
        assert_eq!(conn.process(&shared), Step::NeedRead);
        assert!(conn.has_pending_out());
        assert!(!conn.drain_closable());
        let _ = flushed(&mut conn);
        assert!(conn.drain_closable());
    }
}
