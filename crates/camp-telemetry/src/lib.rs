//! # camp-telemetry — observability primitives for the CAMP workspace
//!
//! The paper's evaluation is built on instrumentation: Figure 4 counts heap
//! node visits and §4 measures server throughput. This crate provides the
//! shared, zero-dependency substrate those measurements (and every future
//! performance claim) stand on:
//!
//! * [`histogram`] — lock-free, log-bucketed (power-of-2 major buckets,
//!   16 sub-buckets each, HDR-style) latency histograms with p50/p90/p99/p999
//!   readout and cross-shard merge. Recording is a handful of relaxed atomic
//!   adds — safe to call from every connection thread with no mutex.
//! * [`logger`] — a leveled, structured (key=value line format) logger
//!   behind a global atomic level, replacing ad-hoc prints.
//! * [`expose`] — a Prometheus-style text exposition builder, so the
//!   simulator's metrics and the live server's `--metrics-addr` endpoint
//!   report through one vocabulary.
//! * [`trace`] — the flight recorder: wait-free ring buffers retaining the
//!   most recent request spans (with a slow-request log) and eviction
//!   decisions, snapshotable at any time without pausing writers.
//!
//! ## Quick start
//!
//! ```
//! use camp_telemetry::{Exposition, Histogram, MetricKind};
//!
//! let h = Histogram::new();
//! for us in [120u64, 450, 90, 3000] {
//!     h.record(us);
//! }
//! let snap = h.snapshot();
//! assert!(snap.quantile(0.5) >= 120);
//!
//! let mut exp = Exposition::new();
//! exp.family("camp_get_latency_us", "get latency (microseconds)", MetricKind::Summary);
//! exp.summary("camp_get_latency_us", &[], &snap);
//! assert!(exp.render().contains("camp_get_latency_us_count 4"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expose;
pub mod histogram;
pub mod logger;
pub mod trace;

pub use crate::expose::{Exposition, MetricKind};
pub use crate::histogram::{Histogram, HistogramSnapshot};
pub use crate::logger::{set_level, LogLevel};
pub use crate::trace::{EvictionTrace, FlightRecorder, RequestSpan, TraceRecord, TraceRing};
