//! Cross-checks the §4 server implementation against the §3 simulator: the
//! same trace, the same eviction policy family, comparable outcomes.

use camp::core::{Camp, Precision};
use camp::kvs::client::Client;
use camp::kvs::replay::replay_trace;
use camp::kvs::server::Server;
use camp::kvs::slab::SlabConfig;
use camp::kvs::store::{EvictionMode, StoreConfig};
use camp::policies::Lru;
use camp::sim::simulate;
use camp::workload::BgConfig;

fn run_server(trace: &camp::workload::Trace, memory: u64, eviction: EvictionMode) -> f64 {
    let slab_size: u32 = 32 * 1024;
    let slab = SlabConfig::small(
        slab_size,
        u32::try_from(memory / u64::from(slab_size))
            .unwrap_or(1)
            .max(1),
    );
    let server = Server::start("127.0.0.1:0", StoreConfig { slab, eviction }).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let report = replay_trace(&mut client, trace).expect("replay");
    let _ = client.quit();
    server.shutdown();
    report.cost_miss_ratio()
}

#[test]
fn server_and_simulator_agree_on_the_policy_ordering() {
    let trace = BgConfig::paper_scaled(1_500, 40_000, 23).generate();
    let memory = trace.stats().unique_bytes / 4;

    // Simulator verdict.
    let mut sim_camp: Camp<u64, ()> = Camp::new(memory, Precision::Bits(5));
    let sim_camp_cost = simulate(&mut sim_camp, &trace).metrics.cost_miss_ratio();
    let mut sim_lru = Lru::new(memory);
    let sim_lru_cost = simulate(&mut sim_lru, &trace).metrics.cost_miss_ratio();
    assert!(sim_camp_cost < sim_lru_cost);

    // Server verdict (slab overheads shift the absolute numbers, but the
    // ordering and the rough magnitude of the win must agree).
    let srv_camp_cost = run_server(&trace, memory, EvictionMode::Camp(Precision::Bits(5)));
    let srv_lru_cost = run_server(&trace, memory, EvictionMode::Lru);
    assert!(
        srv_camp_cost < srv_lru_cost,
        "server: camp {srv_camp_cost:.4} !< lru {srv_lru_cost:.4}"
    );

    let sim_win = sim_lru_cost / sim_camp_cost.max(1e-6);
    let srv_win = srv_lru_cost / srv_camp_cost.max(1e-6);
    assert!(
        sim_win > 1.2 && srv_win > 1.2,
        "both stacks must show a real win: sim {sim_win:.2}x, server {srv_win:.2}x"
    );
}

#[test]
fn server_replay_is_deterministic_in_hit_accounting() {
    // Two identical replays against fresh servers must agree exactly on
    // hit/miss accounting (wall time of course differs).
    let trace = BgConfig::paper_scaled(800, 15_000, 31).generate();
    let memory = trace.stats().unique_bytes / 3;
    let run = || {
        let slab = SlabConfig::small(
            32 * 1024,
            u32::try_from(memory / (32 * 1024)).unwrap().max(1),
        );
        let server = Server::start(
            "127.0.0.1:0",
            StoreConfig {
                slab,
                eviction: EvictionMode::Camp(Precision::Bits(5)),
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let report = replay_trace(&mut client, &trace).unwrap();
        let _ = client.quit();
        server.shutdown();
        (report.hits, report.misses, report.missed_cost)
    };
    assert_eq!(run(), run());
}

#[test]
fn iq_timing_cost_orders_items_like_hints_do() {
    // Drive the IQ timestamp path (no hints): a key whose recomputation
    // takes visibly longer must be protected over fast cheap keys.
    let server = Server::start(
        "127.0.0.1:0",
        StoreConfig {
            slab: SlabConfig::small(4096, 2),
            eviction: EvictionMode::Camp(Precision::Bits(5)),
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Expensive key: 30 ms of "recomputation" between iqget and iqset.
    assert!(client.iqget(b"slow").unwrap().is_none());
    std::thread::sleep(std::time::Duration::from_millis(30));
    assert!(client.iqset(b"slow", &[1u8; 40], 0, 0, None).unwrap());

    // Churn cheap keys (instant recompute) to force evictions.
    for i in 0..200u32 {
        let key = format!("fast-{i}");
        if client.iqget(key.as_bytes()).unwrap().is_none() {
            client
                .iqset(key.as_bytes(), &[0u8; 40], 0, 0, None)
                .unwrap();
        }
    }
    assert!(
        client.iqget(b"slow").unwrap().is_some(),
        "the slow-to-compute key should survive cheap churn"
    );
    client.quit().unwrap();
    server.shutdown();
}
