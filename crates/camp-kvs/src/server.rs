//! The TCP server: a Twemcache-like KVS speaking the text protocol.
//!
//! One thread per connection over a shared, hash-partitioned
//! [`ShardedStore`]. [`Server::start`] uses a single shard (one lock, the
//! stock-Twemcache arrangement); [`Server::start_sharded`] partitions keys
//! over independently locked shards — the paper's §4.1 vertical-scaling
//! recipe, where threads touching different partitions never contend.
//!
//! The IQ framework's cost computation lives here: `iqget` misses record a
//! timestamp, and a later `iqset` for the same key uses the elapsed
//! microseconds as the pair's cost — "the difference between these two
//! timestamps is used as the cost of the key-value pair" (§4) — unless the
//! client supplied an explicit cost hint. The miss registry is striped with
//! the same hash the store uses for sharding, so `iqget`/`iqset` traffic on
//! different shards never contends on a single registry lock.
//!
//! Every command is timed at this layer into per-command lock-free
//! histograms ([`ServerMetrics`]); `stats detail` reports the quantiles and
//! the policies' internal gauges, and [`ServerOptions::metrics_addr`]
//! additionally serves the whole [`TelemetryReport`] as Prometheus text
//! over plain HTTP for scraping.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use camp_telemetry::{kvlog, FlightRecorder, LogLevel, RequestSpan};

use crate::fault::{FaultAction, FaultPlan, FaultState};
use crate::metrics::{
    CmdKind, FaultKind, ReactorStats, RecorderSink, RejectCause, ServerMetrics, TelemetryReport,
};
use crate::net::epoll::ReusePortListener;
use crate::protocol::{
    parse_command_limited, Command, SetHeader, SetVerb, StatsScope, DEFAULT_MAX_VALUE_LEN,
};
use crate::shard::ShardedStore;
use crate::store::{StoreConfig, StoreError, StoreStats};
use crate::sync::{lock, ConnGauge};

/// How long an unmatched `iqget` miss is remembered. A client that never
/// issues the paired `iqset` (crashed, gave up) would otherwise leak its
/// registry entry forever; the sweep drops entries past this age.
const IQ_MISS_TTL: Duration = Duration::from_secs(120);

/// Granularity of a connection's blocking reads: the socket read timeout
/// is capped at this tick so a blocked connection periodically wakes to
/// check the idle deadline and the drain flag. Reads on a socket that has
/// data ready return immediately, so the tick costs the hot path nothing.
const READ_TICK: Duration = Duration::from_millis(500);

/// Read-timeout nudge applied to every live connection when a drain
/// begins, so idle connections notice the drain within ~this interval
/// instead of a full [`READ_TICK`].
const DRAIN_TICK: Duration = Duration::from_millis(50);

/// Default drain deadline for [`Server::shutdown`].
const DEFAULT_DRAIN: Duration = Duration::from_secs(5);

/// One lock-striped partition of the IQ miss registry.
#[derive(Debug)]
struct IqStripe {
    misses: HashMap<Vec<u8>, Instant>,
    last_sweep: Instant,
}

/// IQ miss registry: key -> time of the `iqget` miss, partitioned into one
/// stripe per store shard (indexed by [`ShardedStore::shard_index`], so a
/// key's registry stripe and store shard are guarded by different locks but
/// partition identically).
#[derive(Debug)]
struct IqRegistry {
    stripes: Vec<Mutex<IqStripe>>,
    /// Entries dropped by the TTL sweep, cumulatively (a `stats detail` /
    /// exposition gauge: it measures clients that armed the cost timer and
    /// never came back).
    swept: AtomicU64,
}

impl IqRegistry {
    fn new(stripes: usize) -> IqRegistry {
        IqRegistry {
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::new(IqStripe {
                        misses: HashMap::new(),
                        last_sweep: Instant::now(),
                    })
                })
                .collect(),
            swept: AtomicU64::new(0),
        }
    }

    /// Records a miss timestamp, sweeping the stripe's expired entries at
    /// most once per TTL period (amortized O(1) per record).
    fn record_miss(&self, stripe: usize, key: Vec<u8>) {
        let mut guard = lock(&self.stripes[stripe]);
        let now = Instant::now();
        if now.duration_since(guard.last_sweep) >= IQ_MISS_TTL {
            let before = guard.misses.len();
            guard
                .misses
                .retain(|_, started| now.duration_since(*started) < IQ_MISS_TTL);
            let reclaimed = (before - guard.misses.len()) as u64;
            if reclaimed > 0 {
                // ordering: Relaxed — statistics counter.
                self.swept.fetch_add(reclaimed, Ordering::Relaxed);
            }
            guard.last_sweep = now;
        }
        guard.misses.insert(key, now);
    }

    /// Consumes the registered miss time for `key`, if any and not expired.
    fn take(&self, stripe: usize, key: &[u8]) -> Option<Instant> {
        lock(&self.stripes[stripe])
            .misses
            .remove(key)
            .filter(|started| started.elapsed() < IQ_MISS_TTL)
    }

    fn discard(&self, stripe: usize, key: &[u8]) {
        lock(&self.stripes[stripe]).misses.remove(key);
    }

    fn clear(&self) {
        for stripe in &self.stripes {
            lock(stripe).misses.clear();
        }
    }

    /// Unmatched misses currently registered, across stripes.
    fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock(s).misses.len()).sum()
    }
}

/// The live-connection registry: a cloned stream handle per connection,
/// so a drain can nudge read timeouts and sever stragglers from outside
/// the connection threads.
#[derive(Debug, Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    fn insert(&self, id: u64, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            lock(&self.streams).insert(id, clone);
        }
    }

    fn remove(&self, id: u64) {
        lock(&self.streams).remove(&id);
    }

    fn len(&self) -> usize {
        lock(&self.streams).len()
    }

    /// Shortens every live connection's read timeout so blocked reads wake
    /// promptly (SO_RCVTIMEO is per-socket; the clone shares it).
    fn nudge(&self, timeout: Duration) {
        for stream in lock(&self.streams).values() {
            stream.set_read_timeout(Some(timeout)).ok();
        }
    }

    /// Severs every connection still registered; returns how many.
    fn sever_all(&self) -> u64 {
        let mut severed = 0;
        for stream in lock(&self.streams).values() {
            stream.shutdown(Shutdown::Both).ok();
            severed += 1;
        }
        severed
    }
}

/// Shared server state (visible to the `net` reactor modules, which are
/// the other consumers of the command-execution layer).
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) store: ShardedStore,
    iq_misses: IqRegistry,
    pub(crate) metrics: ServerMetrics,
    pub(crate) shutdown: AtomicBool,
    /// Set when a drain begins: connections finish in-flight work and
    /// close at the next command boundary.
    pub(crate) draining: AtomicBool,
    /// Live-connection gauge enforcing `max_conns` (slot reservation).
    pub(crate) conns: ConnGauge,
    /// Connection-id allocator (also seeds per-connection fault streams).
    pub(crate) next_conn_id: AtomicU64,
    registry: ConnRegistry,
    /// Accept cap (0 = unlimited).
    pub(crate) max_conns: usize,
    /// Declared-length cap on set data blocks.
    pub(crate) max_value_len: usize,
    /// Idle eviction deadline measured from the last *completed* command
    /// (`ZERO` = disabled).
    pub(crate) idle_timeout: Duration,
    /// Active chaos plan, if any.
    pub(crate) fault_plan: Option<FaultPlan>,
    /// The always-on flight recorder: per-worker request-span rings, the
    /// slow-request log, and the eviction-event ring.
    pub(crate) recorder: Arc<FlightRecorder>,
    /// Per-worker reactor counters (`stats detail` / Prometheus).
    pub(crate) reactor_stats: ReactorStats,
    /// The durability engine (`--data-dir`); `None` = memory-only, with
    /// the write path byte-identical to a build without persistence.
    pub(crate) persist: Option<Arc<crate::persist::Persist>>,
}

impl Shared {
    /// Builds the shared state, replaying the persistence log into the
    /// fresh store when one is configured — recovery completes before
    /// any listener binds.
    ///
    /// # Errors
    ///
    /// Propagates persistence-open failures (unusable `--data-dir`).
    pub(crate) fn new(options: &ServerOptions) -> io::Result<Shared> {
        let workers = if options.legacy_threads {
            1
        } else {
            resolve_workers(options.workers)
        };
        let recorder = Arc::new(FlightRecorder::new(workers, options.slow_log_us));
        let store = ShardedStore::new(options.config.clone(), options.shards);
        store.set_trace_sink(Some(Arc::new(RecorderSink::new(Arc::clone(&recorder)))));
        let persist = match options.persist.as_ref() {
            Some(persist_options) => {
                let plan = options.fault_plan.clone().unwrap_or_default();
                Some(Arc::new(crate::persist::Persist::open(
                    persist_options.clone(),
                    &plan,
                    &store,
                )?))
            }
            None => None,
        };
        Ok(Shared {
            store,
            iq_misses: IqRegistry::new(options.shards),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            conns: ConnGauge::new(options.max_conns),
            next_conn_id: AtomicU64::new(1),
            registry: ConnRegistry::default(),
            max_conns: options.max_conns,
            max_value_len: options.max_value_len,
            idle_timeout: options.idle_timeout,
            fault_plan: options.fault_plan.clone(),
            recorder,
            reactor_stats: ReactorStats::new(workers),
            persist,
        })
    }

    /// The registry stripe for `key` — same hash partition as the store.
    fn iq_stripe(&self, key: &[u8]) -> usize {
        self.store.shard_index(key)
    }

    fn stopping(&self) -> bool {
        // ordering: SeqCst(x2) — shutdown/drain control plane; rare, and
        // the simplest reasoning wins over saving a fence.
        self.shutdown.load(Ordering::SeqCst) || self.draining.load(Ordering::SeqCst)
    }
}

/// Everything [`Server::start_with`] needs beyond the bind address.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Store geometry and eviction policy.
    pub config: StoreConfig,
    /// Number of independently locked store shards.
    pub shards: usize,
    /// Bind address for the Prometheus text exposition (e.g.
    /// `127.0.0.1:9184`, port 0 for ephemeral). `None` disables it.
    pub metrics_addr: Option<String>,
    /// Maximum simultaneous connections; an accept past the cap receives
    /// `SERVER_ERROR too many connections` and is closed immediately
    /// (never a silent stall). `0` = unlimited (the library default; the
    /// daemon defaults to 1024).
    pub max_conns: usize,
    /// Cap on a storage command's declared data-block length; a `set`
    /// announcing more receives a fatal
    /// `SERVER_ERROR object too large for cache` before any data byte is
    /// read. Default [`DEFAULT_MAX_VALUE_LEN`] (1 MiB).
    pub max_value_len: usize,
    /// Connections that go this long without *completing* a command are
    /// evicted — this catches both silent idlers and slowloris clients
    /// trickling bytes forever. `Duration::ZERO` disables. Default 60 s.
    pub idle_timeout: Duration,
    /// Deterministic fault-injection plan (`None` = faults off). See
    /// [`crate::fault`].
    pub fault_plan: Option<FaultPlan>,
    /// Reactor worker event loops. `0` = auto: one per available core,
    /// capped at 8 (the accept thread and shard locks saturate first).
    /// Ignored under [`ServerOptions::legacy_threads`].
    pub workers: usize,
    /// Escape hatch: run the legacy thread-per-connection loop instead of
    /// the epoll reactor (kept for one release; the daemon exposes it as
    /// `--legacy-threads`).
    pub legacy_threads: bool,
    /// Reactor accept fallback: feed every worker from one blocking
    /// accept thread instead of per-worker `SO_REUSEPORT` listeners (the
    /// pre-PR 8 intake path; the daemon exposes it as
    /// `--single-listener`). Ignored under
    /// [`ServerOptions::legacy_threads`], which always uses one listener.
    pub single_listener: bool,
    /// Slow-request threshold in microseconds: reactor request spans whose
    /// buffered→flushed time meets or exceeds this are promoted to the
    /// retained slow-request log (dumped by `trace` and `/trace`). `None`
    /// disables promotion; spans are still ring-recorded either way. The
    /// daemon exposes this as `--slow-log MICROS`.
    pub slow_log_us: Option<u64>,
    /// Crash-safe durability (`--data-dir`/`--fsync`): when set, every
    /// acknowledged mutation is appended to a checksummed log and boot
    /// replays it before the listeners open. `None` (the default) keeps
    /// the server memory-only with an untouched hot path.
    pub persist: Option<crate::persist::PersistOptions>,
}

impl ServerOptions {
    /// Single-shard options with no metrics listener, no connection cap,
    /// a 1 MiB value cap, a 60 s idle timeout, no fault injection, and
    /// the reactor backend with auto worker count.
    #[must_use]
    pub fn new(config: StoreConfig) -> ServerOptions {
        ServerOptions {
            config,
            shards: 1,
            metrics_addr: None,
            max_conns: 0,
            max_value_len: DEFAULT_MAX_VALUE_LEN,
            idle_timeout: Duration::from_secs(60),
            fault_plan: None,
            workers: 0,
            legacy_threads: false,
            single_listener: false,
            slow_log_us: None,
            persist: None,
        }
    }
}

/// Resolves [`ServerOptions::workers`]: explicit wins, else one worker
/// per available core, capped at 8.
fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// What a graceful drain accomplished (see [`Server::shutdown_with_drain`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct DrainReport {
    /// Connections live when the drain began.
    pub connections_at_drain: u64,
    /// Connections that closed on their own before the deadline.
    pub drained: u64,
    /// Connections still active at the deadline, forcibly severed.
    pub severed: u64,
    /// Commands the server completed while draining.
    pub requests_completed: u64,
    /// Wall-clock milliseconds the drain took.
    pub elapsed_ms: u64,
}

impl DrainReport {
    /// Whether every connection closed on its own (nothing severed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.severed == 0
    }
}

/// A running KVS server.
///
/// # Examples
///
/// ```no_run
/// use camp_kvs::server::Server;
/// use camp_kvs::store::StoreConfig;
///
/// let server = Server::start("127.0.0.1:0", StoreConfig::camp_with_memory(16 << 20))?;
/// println!("listening on {}", server.local_addr());
/// server.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    metrics_thread: Option<std::thread::JoinHandle<()>>,
    persist_thread: Option<std::thread::JoinHandle<()>>,
    backend: Backend,
}

/// Which connection engine the server is running.
#[derive(Debug)]
enum Backend {
    /// Thread-per-connection (the pre-reactor engine, kept one release).
    Legacy,
    /// The epoll reactor: N worker event loops (see [`crate::net`]).
    Reactor(Arc<crate::net::reactor::Reactor>),
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn start(addr: &str, config: StoreConfig) -> io::Result<Server> {
        Server::start_with(addr, ServerOptions::new(config))
    }

    /// Like [`Server::start`], with the store hash-partitioned over
    /// `shards` independently locked shards (the §4.1 scaling recipe).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn start_sharded(addr: &str, config: StoreConfig, shards: usize) -> io::Result<Server> {
        Server::start_with(
            addr,
            ServerOptions {
                shards,
                ..ServerOptions::new(config)
            },
        )
    }

    /// The general entry point: binds `addr`, optionally binds the metrics
    /// exposition listener, and starts the accept loops.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding either listener.
    pub fn start_with(addr: &str, options: ServerOptions) -> io::Result<Server> {
        let policy = options.config.eviction.to_string();
        let shared = Arc::new(Shared::new(&options)?);
        // The persistence maintenance thread (interval fsync, degraded
        // retry) starts before the listeners: telemetry and re-arm work
        // even if binding fails later and the Server is dropped.
        let persist_thread = match shared.persist.as_ref() {
            Some(_) => {
                let bg = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("camp-kvs-persist".into())
                        .spawn(move || {
                            if let Some(persist) = bg.persist.as_ref() {
                                persist.background_loop(&bg.store);
                            }
                        })?,
                )
            }
            None => None,
        };
        let (backend, accept_thread, local_addr) = if options.legacy_threads {
            let listener = TcpListener::bind(addr)?;
            let local_addr = listener.local_addr()?;
            let accept_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("camp-kvs-accept".into())
                .spawn(move || accept_loop(&listener, &accept_shared))?;
            (Backend::Legacy, Some(handle), local_addr)
        } else if options.single_listener {
            let listener = TcpListener::bind(addr)?;
            let local_addr = listener.local_addr()?;
            let workers = resolve_workers(options.workers);
            let reactor = Arc::new(crate::net::reactor::Reactor::start(&shared, workers)?);
            let accept_shared = Arc::clone(&shared);
            let accept_reactor = Arc::clone(&reactor);
            let handle = std::thread::Builder::new()
                .name("camp-kvs-accept".into())
                .spawn(move || accept_loop_reactor(&listener, &accept_shared, &accept_reactor))?;
            (Backend::Reactor(reactor), Some(handle), local_addr)
        } else {
            // Default: one SO_REUSEPORT listener per worker, each accepted
            // inside its owner's event loop — no accept thread at all. The
            // first bind resolves any ephemeral port; siblings bind the
            // concrete address so they share the same port group.
            let workers = resolve_workers(options.workers);
            let first_addr = addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
            let first = ReusePortListener::bind(first_addr)?;
            let local_addr = first.local_addr();
            let mut listeners = vec![first];
            for _ in 1..workers {
                listeners.push(ReusePortListener::bind(local_addr)?);
            }
            let reactor = Arc::new(crate::net::reactor::Reactor::start_with_listeners(
                &shared, listeners,
            )?);
            (Backend::Reactor(reactor), None, local_addr)
        };
        let (metrics_addr, metrics_thread) = match options.metrics_addr.as_deref() {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                let bound = listener.local_addr()?;
                let metrics_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("camp-kvs-metrics".into())
                    .spawn(move || metrics_loop(&listener, &metrics_shared))?;
                kvlog!(LogLevel::Info, "metrics_listener_started", addr = bound);
                (Some(bound), Some(handle))
            }
            None => (None, None),
        };
        kvlog!(
            LogLevel::Info,
            "server_started",
            addr = local_addr,
            shards = options.shards,
            policy = policy,
        );
        Ok(Server {
            shared,
            local_addr,
            metrics_addr,
            accept_thread,
            metrics_thread,
            persist_thread,
            backend,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound metrics-exposition address, when one was requested.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Snapshot of the store counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.shared.store.stats()
    }

    /// Number of live items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.store.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Gracefully stops the server with the default drain deadline (5 s).
    /// Equivalent to [`Server::shutdown_with_drain`]; idle connections
    /// close within tens of milliseconds, so this is fast in practice.
    pub fn shutdown(self) -> DrainReport {
        self.shutdown_with_drain(DEFAULT_DRAIN)
    }

    /// Gracefully stops the server: the listener closes immediately (no
    /// new connections), in-flight commands run to completion, idle
    /// connections are closed at their next read tick, and anything still
    /// busy when `deadline` expires is forcibly severed. Returns an
    /// accounting of what happened.
    pub fn shutdown_with_drain(mut self, deadline: Duration) -> DrainReport {
        let started = Instant::now();
        let requests_before = self.shared.metrics.total_requests();
        let connections_at_drain = match &self.backend {
            Backend::Legacy => self.shared.registry.len() as u64,
            Backend::Reactor(_) => self.shared.conns.live() as u64,
        };
        // ordering: SeqCst — drain control plane; see `stopping`.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.signal_shutdown();
        self.join_threads();
        let severed = match &self.backend {
            Backend::Legacy => {
                // Shorten every blocked read so idle connections notice the
                // drain within a DRAIN_TICK instead of a full READ_TICK.
                self.shared.registry.nudge(DRAIN_TICK);
                while self.shared.registry.len() > 0 && started.elapsed() < deadline {
                    std::thread::sleep(DRAIN_TICK);
                }
                self.shared.registry.sever_all()
            }
            Backend::Reactor(reactor) => {
                // The drain flag is already visible; a wake-up makes every
                // worker sweep its idle connections immediately.
                reactor.wake_all();
                while self.shared.conns.live() > 0 && started.elapsed() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
                reactor.sever_and_join()
            }
        };
        // All request workers are gone: no appends can race the seal.
        self.seal_persistence();
        let report = DrainReport {
            connections_at_drain,
            drained: connections_at_drain.saturating_sub(severed),
            severed,
            requests_completed: self
                .shared
                .metrics
                .total_requests()
                .saturating_sub(requests_before),
            elapsed_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
        };
        kvlog!(
            LogLevel::Info,
            "server_drained",
            connections = report.connections_at_drain,
            drained = report.drained,
            severed = report.severed,
            requests_completed = report.requests_completed,
            elapsed_ms = report.elapsed_ms,
        );
        report
    }

    fn signal_shutdown(&self) {
        // ordering: SeqCst — shutdown control plane; see `stopping`.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        kvlog!(LogLevel::Info, "server_stopping", addr = self.local_addr);
        // Unblock the accept thread, when one exists. The multi-listener
        // path has none: workers observe the flag on their next wakeup
        // (the caller follows with `wake_all` / `sever_and_join`).
        if self.accept_thread.is_some() {
            let _ = TcpStream::connect(self.local_addr);
        }
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
    }

    fn join_threads(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.metrics_thread.take() {
            let _ = handle.join();
        }
    }

    /// Seals the persistence log (clean-shutdown marker + final fsync)
    /// and joins the maintenance thread. The taken handle makes this
    /// idempotent: the drain path runs it, and `Drop` only repeats it
    /// for a `Server` dropped without an explicit shutdown.
    fn seal_persistence(&mut self) {
        if let Some(handle) = self.persist_thread.take() {
            if let Some(persist) = self.shared.persist.as_ref() {
                persist.seal();
                persist.request_stop();
            }
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // ordering: SeqCst — shutdown control plane; see `stopping`.
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.signal_shutdown();
        }
        self.join_threads();
        // After shutdown_with_drain the workers are already joined; this
        // covers a Server dropped without an explicit shutdown.
        if let Backend::Reactor(reactor) = &self.backend {
            if reactor.running() {
                reactor.sever_and_join();
            }
        }
        self.seal_persistence();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // ordering: SeqCst — shutdown control plane; rare, simplest reasoning.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Overload protection: past the cap, reply with an explicit
                // error and close — a client must never stall in a silent
                // accept-queue limbo.
                // A reservation, not a check-then-add: under an accept
                // burst the old separate load + increment admitted past
                // the cap (caught by the camp-check gauge harness).
                if !shared.conns.try_reserve() {
                    shared.metrics.record_rejected(RejectCause::MaxConns);
                    let _ = stream.write_all(b"SERVER_ERROR too many connections\r\n");
                    let _ = stream.shutdown(Shutdown::Both);
                    kvlog!(
                        LogLevel::Warn,
                        "connection_rejected",
                        cause = "max_conns",
                        limit = shared.max_conns,
                    );
                    continue;
                }
                // ordering: Relaxed — unique-id counter; uniqueness needs
                // only atomicity.
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                shared.registry.insert(conn_id, &stream);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("camp-kvs-conn".into())
                    .spawn(move || {
                        conn_shared
                            .metrics
                            .connections_opened
                            // ordering: Relaxed — statistics counter.
                            .fetch_add(1, Ordering::Relaxed);
                        if let Err(err) = handle_connection(stream, conn_id, &conn_shared) {
                            kvlog!(LogLevel::Debug, "connection_error", error = err);
                        }
                        conn_shared.registry.remove(conn_id);
                        conn_shared.conns.release();
                        conn_shared
                            .metrics
                            .connections_closed
                            // ordering: Relaxed — statistics counter.
                            .fetch_add(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    shared.registry.remove(conn_id);
                    shared.conns.release();
                }
            }
            Err(_) => {
                // ordering: SeqCst — shutdown control plane; rare, simplest reasoning.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// The reactor-backend accept loop: sockets are handed to a worker
/// (round-robin by accept order — the pinning rule) instead of getting a
/// thread. The `max_conns` slot is reserved here with a compare-exchange
/// so the cap is exact under bursts, but enforcement — the error reply
/// and close — happens in the worker's state machine.
fn accept_loop_reactor(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    reactor: &Arc<crate::net::reactor::Reactor>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // ordering: SeqCst — shutdown control plane; rare, simplest reasoning.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let rejected = !shared.conns.try_reserve();
                let id = if rejected {
                    0
                } else {
                    // ordering: Relaxed — unique-id counter.
                    shared.next_conn_id.fetch_add(1, Ordering::Relaxed)
                };
                reactor.submit(crate::net::reactor::Handoff {
                    id,
                    stream,
                    rejected,
                });
            }
            Err(_) => {
                // ordering: SeqCst — shutdown control plane; rare, simplest reasoning.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Whether the connection's read buffer already holds a complete further
/// command line. If it does, the client pipelined and the next response is
/// coming right up — flushing now would waste a syscall per command. A
/// buffer holding only a *partial* line (no `\n`) does not count: the
/// client may be waiting on our responses before sending the rest, so we
/// must flush to avoid a deadlock.
fn pipeline_pending(buffered: &[u8]) -> bool {
    !buffered.is_empty() && buffered.contains(&b'\n')
}

/// Why a patient read returned without a complete payload.
enum ReadOutcome {
    /// A complete line arrived; payload is its wire length in bytes.
    Done(usize),
    /// The peer closed the connection.
    Eof,
    /// The server began draining while the connection was between
    /// commands — close it now.
    Draining,
    /// The idle deadline passed without a completed command.
    IdleTimeout,
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn idle_expired(shared: &Shared, last_complete: Instant) -> bool {
    !shared.idle_timeout.is_zero() && last_complete.elapsed() >= shared.idle_timeout
}

/// Reads one command line, regaining control after every buffer fill to
/// check the drain flag and the idle deadline. This is deliberately NOT
/// `read_until`: that only returns on delimiter/EOF/error, so a slowloris
/// client trickling one byte per timeout tick would hold the thread
/// forever. Chunking through `fill_buf` checks the deadline between
/// chunks — and since only a *completed* command resets the idle clock,
/// the trickler is evicted on schedule. An active connection's data
/// arrives in whole buffered chunks, so the hot path still costs one scan
/// per chunk, same as `read_until`.
fn read_line_patient(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    shared: &Shared,
    last_complete: Instant,
) -> io::Result<ReadOutcome> {
    loop {
        let used = match reader.fill_buf() {
            Ok([]) => {
                // EOF: hand any partial line to the parser, as an un-timed
                // read would.
                return Ok(if line.is_empty() {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Done(line.len())
                });
            }
            Ok(buf) => match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..=pos]);
                    reader.consume(pos + 1);
                    return Ok(ReadOutcome::Done(line.len()));
                }
                None => {
                    line.extend_from_slice(buf);
                    buf.len()
                }
            },
            Err(err) if is_timeout(&err) => 0,
            Err(err) => return Err(err),
        };
        reader.consume(used);
        if line.is_empty() && shared.stopping() {
            return Ok(ReadOutcome::Draining);
        }
        if idle_expired(shared, last_complete) {
            return Ok(ReadOutcome::IdleTimeout);
        }
    }
}

/// Fills `buf` across read-timeout ticks. std's `read_exact` discards its
/// progress when a timeout surfaces mid-fill, so the offset is tracked
/// here. Returns `false` when the idle deadline expires mid-block (a
/// slowloris upload).
fn read_exact_patient(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    shared: &Shared,
    last_complete: Instant,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "client closed mid data block",
                ))
            }
            Ok(n) => filled += n,
            Err(err) if is_timeout(&err) => {
                if idle_expired(shared, last_complete) {
                    return Ok(false);
                }
            }
            Err(err) => return Err(err),
        }
    }
    Ok(true)
}

/// Evicts a connection that exceeded the idle deadline: explicit error,
/// flush, close.
fn evict_idle(writer: &mut BufWriter<TcpStream>, shared: &Shared) -> io::Result<()> {
    shared.metrics.record_rejected(RejectCause::IdleTimeout);
    kvlog!(
        LogLevel::Info,
        "idle_connection_evicted",
        timeout_ms = shared.idle_timeout.as_millis(),
    );
    writeln_crlf(writer, "SERVER_ERROR idle timeout")?;
    writer.flush()
}

fn handle_connection(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // One read timeout for the connection's lifetime (a per-command
    // set_read_timeout would cost a syscall on the hot path): short enough
    // to notice the idle deadline and a drain, long enough that an active
    // connection never sees it — a read with data ready returns at once.
    let tick = if shared.idle_timeout.is_zero() {
        READ_TICK
    } else {
        shared.idle_timeout.min(READ_TICK)
    };
    stream.set_read_timeout(Some(tick)).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut faults = shared
        .fault_plan
        .as_ref()
        .map(|plan| FaultState::new(plan, conn_id));
    // Per-connection scratch buffers, reused across commands: the steady
    // state of this loop allocates nothing. `line` backs the borrowed
    // `Command<'_>` keys, `data` holds one set data block, `response`
    // accumulates get VALUE blocks before one bulk write.
    let mut line = Vec::new();
    let mut data = Vec::new();
    let mut response = Vec::new();
    // The idle clock: time of the last *completed* command.
    let mut last_complete = Instant::now();
    loop {
        line.clear();
        let mut wire_bytes = match read_line_patient(&mut reader, &mut line, shared, last_complete)?
        {
            ReadOutcome::Done(read) => read as u64,
            ReadOutcome::Eof | ReadOutcome::Draining => {
                writer.flush()?;
                return Ok(());
            }
            ReadOutcome::IdleTimeout => return evict_idle(&mut writer, shared),
        };
        while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            line.pop();
        }
        if line.is_empty() {
            if !pipeline_pending(reader.buffer()) {
                writer.flush()?;
            }
            continue;
        }
        match parse_command_limited(&line, shared.max_value_len) {
            Ok(Command::Quit) => {
                writer.flush()?;
                return Ok(());
            }
            Ok(command) => {
                let kind = cmd_kind(&command);
                // Read the set data block *before* starting the clock: the
                // upload time belongs to the client/network, not to the
                // command's service-time histogram.
                let block: &[u8] = match &command {
                    Command::Set { header } => {
                        if !read_data_block(
                            &mut reader,
                            &mut data,
                            header.bytes,
                            shared,
                            last_complete,
                        )? {
                            return evict_idle(&mut writer, shared);
                        }
                        wire_bytes += header.bytes as u64 + 2;
                        &data
                    }
                    _ => &[],
                };
                shared.metrics.record_bytes(kind, wire_bytes);
                // Chaos: the fault decision comes *after* the data block is
                // consumed, so an injected error or delay never
                // desynchronizes the protocol stream.
                if let (Some(plan), Some(state)) = (shared.fault_plan.as_ref(), faults.as_mut()) {
                    match state.decide(plan) {
                        FaultAction::None => {}
                        FaultAction::Delay(dur) => {
                            shared.metrics.record_fault(FaultKind::Delay);
                            std::thread::sleep(dur);
                        }
                        FaultAction::Error => {
                            shared.metrics.record_fault(FaultKind::Error);
                            writeln_crlf(&mut writer, "SERVER_ERROR injected fault")?;
                            if !pipeline_pending(reader.buffer()) {
                                writer.flush()?;
                            }
                            last_complete = Instant::now();
                            continue;
                        }
                        FaultAction::Drop => {
                            // Vanish pre-response — what a crash mid-request
                            // looks like from the client's side.
                            shared.metrics.record_fault(FaultKind::Drop);
                            return Ok(());
                        }
                    }
                }
                let started = Instant::now();
                let keep = execute(&command, block, &mut writer, &mut response, shared)?;
                // Pipelining-aware flush coalescing: a burst of N commands
                // produces one syscall-level write, not N.
                if !pipeline_pending(reader.buffer()) {
                    writer.flush()?;
                }
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                shared.metrics.record_latency(kind, micros);
                last_complete = Instant::now();
                if !keep {
                    writer.flush()?;
                    return Ok(());
                }
            }
            Err(err) => {
                shared.metrics.record_bytes(CmdKind::Other, wire_bytes);
                shared
                    .metrics
                    .protocol_errors
                    // ordering: Relaxed — statistics counter.
                    .fetch_add(1, Ordering::Relaxed);
                kvlog!(LogLevel::Debug, "protocol_error", error = err);
                writeln_crlf(&mut writer, &err.to_string())?;
                writer.flush()?;
                if err.is_fatal() {
                    // The refused data block is still on the wire; reading
                    // on would desync, so the connection must close. Today
                    // the only fatal parse error is an oversize value.
                    shared.metrics.record_rejected(RejectCause::ValueTooLarge);
                    return Ok(());
                }
                last_complete = Instant::now();
            }
        }
    }
}

/// The command class `command` is timed under.
pub(crate) fn cmd_kind(command: &Command) -> CmdKind {
    match command {
        Command::Get { .. } => CmdKind::Get,
        Command::IqGet { .. } => CmdKind::IqGet,
        Command::Set { header } => {
            if header.verb == SetVerb::IqSet {
                CmdKind::IqSet
            } else {
                CmdKind::Set
            }
        }
        Command::Delete { .. } => CmdKind::Delete,
        _ => CmdKind::Other,
    }
}

/// Executes one command against `shared`, writing the reply to `writer`
/// (which the caller flushes when no pipelined command is pending). The
/// legacy path passes its socket `BufWriter`; the reactor passes the
/// connection's in-memory write buffer, where the I/O is infallible.
/// `data` is the already-read set data block (empty otherwise); `response`
/// is the connection's reusable get-serialization buffer. Returns false
/// when the connection should close.
pub(crate) fn execute<W: Write>(
    command: &Command<'_>,
    data: &[u8],
    writer: &mut W,
    response: &mut Vec<u8>,
    shared: &Shared,
) -> io::Result<bool> {
    match *command {
        Command::Get { ref keys } => {
            // Copy-free: each hit's VALUE block is serialized straight from
            // the slab chunk into `response` (inside the shard lock); all
            // keys resolve before the writer is touched, then one bulk
            // write delivers the whole reply.
            response.clear();
            for key in keys.iter() {
                shared.store.get_with(key, |item| {
                    crate::resp::append_value(response, key, item.flags, item.value);
                });
            }
            response.extend_from_slice(b"END\r\n");
            writer.write_all(response)?;
        }
        Command::IqGet { key } => {
            response.clear();
            let hit = shared
                .store
                .get_with(key, |item| {
                    crate::resp::append_value(response, key, item.flags, item.value);
                })
                .is_some();
            if !hit {
                // Register the miss time for the cost computation — the one
                // place the get path needs an owned key.
                shared
                    .iq_misses
                    .record_miss(shared.iq_stripe(key), key.to_vec());
            }
            response.extend_from_slice(b"END\r\n");
            writer.write_all(response)?;
        }
        Command::Set { ref header } => {
            let reply = apply_set(header, data, shared);
            writeln_crlf(writer, reply)?;
        }
        Command::Delete { key } => {
            let deleted = shared.store.delete(key);
            if deleted {
                if let Some(persist) = shared.persist.as_ref() {
                    persist.append_delete(&shared.store, key);
                }
            }
            writeln_crlf(writer, if deleted { "DELETED" } else { "NOT_FOUND" })?;
        }
        Command::Arith { key, delta, up } => {
            let result = if up {
                shared.store.incr(key, delta)
            } else {
                shared.store.decr(key, delta)
            };
            match result {
                Some(value) => {
                    let text = value.to_string();
                    if let Some(persist) = shared.persist.as_ref() {
                        // The rewrite keeps the item's flags, TTL and CAMP
                        // cost; log the same so recovery does too.
                        if let Some((flags, expires_at, cost)) = shared.store.peek_meta(key) {
                            persist.append_set(
                                &shared.store,
                                key,
                                text.as_bytes(),
                                flags,
                                expires_at,
                                cost,
                            );
                        }
                    }
                    writeln_crlf(writer, &text)?;
                }
                None => writeln_crlf(writer, "NOT_FOUND")?,
            }
        }
        Command::Touch { key, exptime } => {
            let expires_at = expiry_to_absolute(exptime);
            let touched = shared.store.touch(key, expires_at);
            if touched {
                if let Some(persist) = shared.persist.as_ref() {
                    persist.append_touch(&shared.store, key, expires_at);
                }
            }
            writeln_crlf(writer, if touched { "TOUCHED" } else { "NOT_FOUND" })?;
        }
        Command::FlushAll => {
            shared.store.flush_all();
            shared.iq_misses.clear();
            if let Some(persist) = shared.persist.as_ref() {
                persist.append_clear(&shared.store);
            }
            kvlog!(LogLevel::Info, "flush_all");
            writeln_crlf(writer, "OK")?;
        }
        Command::Version => {
            writeln_crlf(
                writer,
                concat!("VERSION camp-kvs/", env!("CARGO_PKG_VERSION")),
            )?;
        }
        Command::Stats { scope } => match scope {
            StatsScope::Summary => {
                for stat_line in telemetry_report(shared).summary_lines() {
                    writeln_crlf(writer, &stat_line)?;
                }
                writeln_crlf(writer, "END")?;
            }
            StatsScope::Detail => {
                for stat_line in telemetry_report(shared).detail_lines() {
                    writeln_crlf(writer, &stat_line)?;
                }
                writeln_crlf(writer, "END")?;
            }
            StatsScope::Reset => {
                shared.store.reset_stats();
                shared.metrics.reset();
                shared.recorder.reset_derived();
                shared.reactor_stats.reset();
                // ordering: Relaxed — statistics counter reset.
                shared.iq_misses.swept.store(0, Ordering::Relaxed);
                kvlog!(LogLevel::Info, "stats_reset");
                writeln_crlf(writer, "RESET")?;
            }
            StatsScope::Profile => {
                for stat_line in telemetry_report(shared).profile_lines() {
                    writeln_crlf(writer, &stat_line)?;
                }
                writeln_crlf(writer, "END")?;
            }
        },
        Command::Trace => {
            for trace_line in trace_lines(shared) {
                writeln_crlf(writer, &trace_line)?;
            }
            writeln_crlf(writer, "END")?;
        }
        Command::Quit => return Ok(false),
    }
    Ok(true)
}

/// How many recent spans / eviction events a `trace` dump includes (the
/// rings hold more; the dump is bounded so a reply stays small).
const TRACE_DUMP_SPANS: usize = 64;
const TRACE_DUMP_EVICTIONS: usize = 64;

fn format_span(tag: &str, span: &RequestSpan) -> String {
    let parse_us = span.parsed_us.saturating_sub(span.buffered_us);
    let exec_us = span.executed_us.saturating_sub(span.parsed_us);
    let flush_us = span.flushed_us.saturating_sub(span.executed_us);
    format!(
        "{tag} conn={} cmd={} wire={} at_us={} parse_us={parse_us} exec_us={exec_us} \
         flush_us={flush_us} total_us={}",
        span.conn_id,
        CmdKind::from_code(span.cmd).name(),
        span.wire_bytes,
        span.buffered_us,
        span.total_us(),
    )
}

/// The `trace` command / `/trace` page body: recorder counters, the most
/// recent request spans, the retained slow log, and recent eviction
/// events.
fn trace_lines(shared: &Shared) -> Vec<String> {
    let recorder = &shared.recorder;
    let mut lines = Vec::new();
    lines.push(format!(
        "TRACE slow_threshold_us {}",
        recorder
            .slow_threshold_us()
            .map_or_else(|| "disabled".to_owned(), |us| us.to_string())
    ));
    lines.push(format!(
        "TRACE spans_recorded {}",
        recorder.spans_recorded()
    ));
    lines.push(format!("TRACE slow_recorded {}", recorder.slow_recorded()));
    lines.push(format!("TRACE admits {}", recorder.admits_recorded()));
    lines.push(format!("TRACE evictions {}", recorder.evicts_recorded()));
    let spans = recorder.spans_snapshot();
    let skip = spans.len().saturating_sub(TRACE_DUMP_SPANS);
    for span in &spans[skip..] {
        lines.push(format_span("SPAN", span));
    }
    for span in recorder.slow_snapshot() {
        lines.push(format_span("SLOW", &span));
    }
    let evictions = recorder.evictions_snapshot();
    let skip = evictions.len().saturating_sub(TRACE_DUMP_EVICTIONS);
    for event in &evictions[skip..] {
        lines.push(format!(
            "EVICTION kind={} key={:016x} size={} cost={} ratio={} queue={} l={}",
            if event.admit { "admit" } else { "evict" },
            event.key_hash,
            event.size,
            event.cost,
            event.ratio,
            event.queue,
            event.l_value,
        ));
    }
    lines
}

/// Assembles the full telemetry snapshot behind `stats`, `stats detail`
/// and the Prometheus exposition.
fn telemetry_report(shared: &Shared) -> TelemetryReport {
    let shards = shared.store.per_shard();
    TelemetryReport {
        version: env!("CARGO_PKG_VERSION"),
        policy: shards.first().map(|s| s.policy.clone()).unwrap_or_default(),
        curr_items: shards.iter().map(|s| s.items).sum(),
        totals: shared.store.stats(),
        slab_census: shared.store.slab_census(),
        latencies: shared.metrics.latency_snapshots(),
        bytes_read: shared.metrics.bytes_read_snapshot(),
        // ordering: Relaxed(x3) — statistics counters; the snapshot is
        // advisory and never gates an operation.
        connections_opened: shared.metrics.connections_opened.load(Ordering::Relaxed),
        connections_closed: shared.metrics.connections_closed.load(Ordering::Relaxed),
        protocol_errors: shared.metrics.protocol_errors.load(Ordering::Relaxed),
        conn_rejected: shared.metrics.rejected_snapshot(),
        faults_injected: shared.metrics.faults_snapshot(),
        lock_poison_recovered: crate::sync::poison_recovered_total(),
        iq_miss_registry_size: shared.iq_misses.len() as u64,
        // ordering: Relaxed — statistics counter.
        iq_sweep_reclaimed: shared.iq_misses.swept.load(Ordering::Relaxed),
        shadow: shared.store.shadow_estimates(),
        shadow_sample_modulus: shared.store.shadow_sample_modulus(),
        spans_recorded: shared.recorder.spans_recorded(),
        slow_recorded: shared.recorder.slow_recorded(),
        slow_threshold_us: shared.recorder.slow_threshold_us(),
        trace_admits: shared.recorder.admits_recorded(),
        trace_evicts: shared.recorder.evicts_recorded(),
        eviction_costs: shared.recorder.eviction_cost_snapshot(),
        l_values: shared.recorder.l_value_snapshot(),
        reactor_workers: shared.reactor_stats.snapshot(),
        flush_segments: shared.metrics.flush_segments.snapshot(),
        persist: shared.persist.as_ref().map(|p| p.snapshot()),
        shards,
    }
}

/// The metrics accept loop: each connection gets one scrape response.
/// Scrapes are served inline (no per-connection thread) — a scraper
/// arrives every few seconds, not thousands per second.
fn metrics_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // ordering: SeqCst — shutdown control plane; rare, simplest reasoning.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Err(err) = serve_metrics_once(stream, shared) {
                    kvlog!(LogLevel::Debug, "metrics_scrape_error", error = err);
                }
            }
            Err(_) => {
                // ordering: SeqCst — shutdown control plane; rare, simplest reasoning.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Answers one HTTP request: `/trace` serves the flight-recorder dump as
/// plain text, any other path (`GET /metrics`, `GET /`) serves the
/// Prometheus exposition. Headers are read and discarded up to the blank
/// line.
fn serve_metrics_once(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let trace_page = path == "/trace" || path.starts_with("/trace?");
    let mut header_line = String::new();
    loop {
        header_line.clear();
        let read = reader.read_line(&mut header_line)?;
        if read == 0 || header_line == "\r\n" || header_line == "\n" {
            break;
        }
    }
    let (body, content_type) = if trace_page {
        let mut text = trace_lines(shared).join("\n");
        text.push('\n');
        (text, "text/plain; charset=utf-8")
    } else {
        (
            telemetry_report(shared).render_prometheus(),
            "text/plain; version=0.0.4; charset=utf-8",
        )
    };
    let mut writer = BufWriter::new(stream);
    write!(
        writer,
        "HTTP/1.1 200 OK\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

fn apply_set(header: &SetHeader<'_>, data: &[u8], shared: &Shared) -> &'static str {
    let iq = header.verb == SetVerb::IqSet;
    // Cost: explicit hint, else the IQ registry's elapsed time, else 0.
    let cost = match header.cost_hint {
        Some(hint) => hint,
        None if iq => {
            let started = shared
                .iq_misses
                .take(shared.iq_stripe(header.key), header.key);
            started
                .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
                .unwrap_or(0)
        }
        None => 0,
    };
    if iq && header.cost_hint.is_some() {
        // The hint supersedes the registry entry.
        shared
            .iq_misses
            .discard(shared.iq_stripe(header.key), header.key);
    }
    let expires_at = expiry_to_absolute(header.exptime);
    let result = match header.verb {
        SetVerb::Set | SetVerb::IqSet => shared
            .store
            .set(header.key, data, header.flags, expires_at, cost)
            .map(|()| true),
        SetVerb::Add => shared
            .store
            .add(header.key, data, header.flags, expires_at, cost),
        SetVerb::Replace => shared
            .store
            .replace(header.key, data, header.flags, expires_at, cost),
    };
    match result {
        Ok(true) => {
            // Log only acknowledged stores, after the shard lock is
            // released — the journal records effects, not attempts.
            if let Some(persist) = shared.persist.as_ref() {
                persist.append_set(
                    &shared.store,
                    header.key,
                    data,
                    header.flags,
                    expires_at,
                    cost,
                );
            }
            "STORED"
        }
        Ok(false) => "NOT_STORED",
        Err(StoreError::ValueTooLarge { .. }) => "SERVER_ERROR object too large for cache",
        Err(StoreError::OutOfMemory) => "SERVER_ERROR out of memory storing object",
    }
}

/// Memcached expiry semantics: 0 = never; values up to 30 days are
/// relative seconds; larger values are absolute unix timestamps.
fn expiry_to_absolute(exptime: u64) -> u64 {
    const THIRTY_DAYS: u64 = 60 * 60 * 24 * 30;
    if exptime == 0 {
        0
    } else if exptime <= THIRTY_DAYS {
        unix_now() + exptime
    } else {
        exptime
    }
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Reads a `bytes`-long data block plus its CRLF terminator into the
/// connection's reusable scratch buffer (growing but never reallocating
/// once warm, and never zero-filling more than the growth delta).
/// Returns `false` when the idle deadline expired mid-upload.
fn read_data_block(
    reader: &mut BufReader<TcpStream>,
    data: &mut Vec<u8>,
    bytes: usize,
    shared: &Shared,
    last_complete: Instant,
) -> io::Result<bool> {
    if data.len() < bytes {
        data.resize(bytes, 0);
    } else {
        data.truncate(bytes);
    }
    if !read_exact_patient(reader, data, shared, last_complete)? {
        return Ok(false);
    }
    let mut crlf = [0u8; 2];
    if !read_exact_patient(reader, &mut crlf, shared, last_complete)? {
        return Ok(false);
    }
    if &crlf != b"\r\n" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "data block not terminated by CRLF",
        ));
    }
    Ok(true)
}

fn writeln_crlf<W: Write>(writer: &mut W, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::SlabConfig;
    use crate::store::EvictionMode;
    use camp_core::Precision;

    fn test_server() -> Server {
        Server::start(
            "127.0.0.1:0",
            StoreConfig {
                slab: SlabConfig::small(16 * 1024, 8),
                eviction: EvictionMode::Camp(Precision::Bits(5)),
            },
        )
        .expect("bind test server")
    }

    #[test]
    fn expiry_semantics() {
        assert_eq!(expiry_to_absolute(0), 0);
        let relative = expiry_to_absolute(60);
        assert!(relative > unix_now() + 50 && relative <= unix_now() + 61);
        assert_eq!(expiry_to_absolute(4_000_000_000), 4_000_000_000);
    }

    #[test]
    fn starts_and_shuts_down_cleanly() {
        let server = test_server();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        assert!(server.metrics_addr().is_none());
        server.shutdown();
        // After shutdown the port stops accepting new work (either refused
        // outright or closed immediately after accept).
    }

    #[test]
    fn raw_socket_session() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"set hello 5 0 5\r\nworld\r\nget hello\r\nquit\r\n")
            .unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8_lossy(&response);
        assert!(text.contains("STORED"), "{text}");
        assert!(text.contains("VALUE hello 5 5"), "{text}");
        assert!(text.contains("world"), "{text}");
        assert!(text.contains("END"), "{text}");
        server.shutdown();
    }

    #[test]
    fn malformed_command_gets_client_error() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"bogus\r\nquit\r\n").unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        assert!(String::from_utf8_lossy(&response).contains("CLIENT_ERROR"));
        server.shutdown();
    }

    #[test]
    fn drain_closes_idle_connections_cleanly() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"version\r\n").unwrap();
        let mut buf = [0u8; 64];
        assert!(stream.read(&mut buf).unwrap() > 0, "version reply expected");
        // The connection is now registered and idle: a drain must close it
        // without severing.
        let report = server.shutdown_with_drain(Duration::from_secs(2));
        assert_eq!(report.connections_at_drain, 1, "{report:?}");
        assert_eq!(report.drained, 1, "{report:?}");
        assert!(report.is_clean(), "{report:?}");
        // The client observes an orderly EOF, not a reset.
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
    }

    #[test]
    fn metrics_listener_serves_prometheus_text() {
        let server = Server::start_with(
            "127.0.0.1:0",
            ServerOptions {
                shards: 2,
                metrics_addr: Some("127.0.0.1:0".into()),
                ..ServerOptions::new(StoreConfig {
                    slab: SlabConfig::small(16 * 1024, 8),
                    eviction: EvictionMode::Camp(Precision::Bits(5)),
                })
            },
        )
        .expect("bind with metrics");
        let metrics_addr = server.metrics_addr().expect("metrics bound");
        let mut stream = TcpStream::connect(metrics_addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("camp_get_latency_us"), "{text}");
        assert!(text.contains("camp_policy_heap_visits"), "{text}");
        assert!(text.contains("camp_evictions_total{cause=\"capacity\"}"));
        server.shutdown();
    }
}
