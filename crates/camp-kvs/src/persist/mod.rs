//! Crash-safe durability: an append-only, checksummed mutation log with
//! warm restarts.
//!
//! Layout mirrors `net/`: [`record`] is the on-disk codec and recovery
//! scanner, [`io`] is the write-side backend seam (real disk or the
//! deterministic [`FaultFs`] injector), and this module owns the
//! [`Persist`] engine: rotating segment files under `--data-dir`,
//! `--fsync always|interval|never`, compaction-by-snapshot, and a
//! degraded-state machine that keeps the cache serving from memory when
//! the disk is sick.
//!
//! # Log discipline
//!
//! Every successful mutation (`set`/`add`/`replace`/`incr`/`decr`/
//! `delete`/`touch`/`flush_all`) appends one checksummed record to the
//! active segment *after* the shard lock is released — the log is an
//! ordered journal of acknowledged effects, not a write-ahead log, so
//! the hot path with persistence disabled is byte-identical. On boot,
//! [`Persist::open`] replays every segment in index order through the
//! scanner, truncates the torn tail a crash left behind, quarantines
//! corrupt mid-log records, and rebuilds both the sharded store and the
//! per-item CAMP costs before any listener opens.
//!
//! # Degraded state
//!
//! After `trip_after` consecutive I/O errors the engine trips to
//! `degraded`: appends are counted and dropped, the cache keeps
//! serving, and the background thread retries with jittered exponential
//! backoff. Re-arming never replays a gap — it starts a fresh segment
//! with a full snapshot (a [`Record::Clear`] followed by one set per
//! live item), so the log matches the live store the moment it heals.

pub mod io;
pub mod record;
mod state;

pub use io::{FaultFs, IoBackend, RealFs};
pub use record::{Record, ScanSummary};

use std::fmt;
use std::fs::{self, OpenOptions};
use std::io as stdio;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use camp_core::rng::Rng64;
use camp_telemetry::{kvlog, LogLevel};

use crate::fault::FaultPlan;
use crate::shard::ShardedStore;
use crate::sync::lock;

use self::state::EngineState;

/// Segment file extension (files are named `seg-<index>.camplog`).
const SEGMENT_SUFFIX: &str = ".camplog";

/// Floor for `--segment-bytes`: below this, rotation overhead dominates.
pub const MIN_SEGMENT_BYTES: u64 = 4096;

/// When to fsync the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncMode {
    /// fsync after every record: an acknowledged write survives a crash.
    Always,
    /// fsync on a background interval (default 100 ms): bounded loss.
    #[default]
    Interval,
    /// Never fsync explicitly: the OS page cache decides.
    Never,
}

impl FromStr for FsyncMode {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text {
            "always" => Ok(FsyncMode::Always),
            "interval" => Ok(FsyncMode::Interval),
            "never" => Ok(FsyncMode::Never),
            other => Err(format!(
                "unknown fsync mode '{other}' (expected always|interval|never)"
            )),
        }
    }
}

impl fmt::Display for FsyncMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsyncMode::Always => "always",
            FsyncMode::Interval => "interval",
            FsyncMode::Never => "never",
        })
    }
}

/// Configuration for the persistence engine.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Directory holding the segment files (created if absent).
    pub data_dir: PathBuf,
    /// Durability level for appends.
    pub fsync: FsyncMode,
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Compact (snapshot) once this many segments accumulate.
    pub keep_segments: usize,
    /// Consecutive I/O errors before tripping to `degraded`.
    pub trip_after: u32,
    /// Background fsync cadence for [`FsyncMode::Interval`].
    pub fsync_interval: Duration,
}

impl PersistOptions {
    /// Defaults: 64 MiB segments, compaction at 4 segments, degraded
    /// after 5 consecutive errors, 100 ms interval fsync.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        PersistOptions {
            data_dir: data_dir.into(),
            fsync: FsyncMode::default(),
            segment_bytes: 64 << 20,
            keep_segments: 4,
            trip_after: 5,
            fsync_interval: Duration::from_millis(100),
        }
    }
}

/// What boot-time recovery found across all segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoverySummary {
    /// Segment files scanned.
    pub segments: u64,
    /// Checksum-verified records replayed into the store.
    pub records: u64,
    /// Corrupt records (or corrupt spans) skipped mid-log.
    pub quarantined: u64,
    /// Torn-tail bytes truncated or skipped.
    pub torn_bytes: u64,
    /// Whether the newest segment ended in a clean-shutdown seal.
    pub sealed: bool,
}

/// One point-in-time read of the persistence counters, for `stats` and
/// the Prometheus exporter. [`PersistSnapshot::default`] is the all-zero
/// `"disabled"` row the exporter emits when persistence is off, keeping
/// the Prometheus schema stable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct PersistSnapshot {
    /// `"active"` or `"degraded"` (a server without `--data-dir`
    /// reports `"disabled"` by having no snapshot at all).
    pub state: &'static str,
    /// I/O errors observed (append, fsync, repair).
    pub errors: u64,
    /// Payload bytes successfully appended.
    pub bytes: u64,
    /// Successful fsyncs.
    pub fsyncs: u64,
    /// Records successfully appended.
    pub records: u64,
    /// Records dropped while degraded.
    pub dropped: u64,
    /// Records replayed by boot-time recovery.
    pub recovered: u64,
    /// Corrupt records quarantined by boot-time recovery.
    pub quarantined: u64,
    /// Torn-tail bytes found by boot-time recovery.
    pub torn_bytes: u64,
    /// Compaction snapshots taken (including re-arms).
    pub snapshots: u64,
    /// Active-to-degraded transitions (trips) since boot.
    pub trips: u64,
    /// Successful degraded-to-active recoveries.
    pub rearms: u64,
    /// Segment files currently in the log (including the active one).
    pub segments: u64,
}

impl Default for PersistSnapshot {
    fn default() -> Self {
        PersistSnapshot {
            state: "disabled",
            errors: 0,
            bytes: 0,
            fsyncs: 0,
            records: 0,
            dropped: 0,
            recovered: 0,
            quarantined: 0,
            torn_bytes: 0,
            snapshots: 0,
            trips: 0,
            rearms: 0,
            segments: 0,
        }
    }
}

/// The mutable write-side state, held under one mutex.
#[derive(Debug)]
struct LogWriter {
    backend: Box<dyn IoBackend>,
    dir: PathBuf,
    /// Index of the active segment.
    seg_index: u64,
    /// Logical bytes successfully appended to the active segment; the
    /// repair target after a failed (possibly short) write.
    committed: u64,
    consecutive_errors: u32,
    /// All live segments in index order; the active one is last.
    segments: Vec<(u64, PathBuf)>,
    /// Reusable encode buffer.
    scratch: Vec<u8>,
    /// Whether bytes were appended since the last successful fsync.
    dirty: bool,
}

/// The append-only persistence engine. One per server; shared between
/// request workers (appends), the background thread (interval fsync and
/// degraded retry) and the drain path (seal).
#[derive(Debug)]
pub struct Persist {
    writer: Mutex<LogWriter>,
    options: PersistOptions,
    engine: EngineState,
    errors: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    records: AtomicU64,
    recovered: AtomicU64,
    quarantined: AtomicU64,
    torn_bytes: AtomicU64,
    snapshots: AtomicU64,
    stop: AtomicBool,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}{SEGMENT_SUFFIX}"))
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Lists `dir`'s segment files in ascending index order.
fn list_segments(dir: &Path) -> stdio::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        else {
            continue;
        };
        if let Ok(index) = stem.parse::<u64>() {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(index, _)| index);
    Ok(segments)
}

/// What boot-time replay hands back to [`Persist::open`]: the scan
/// summary, the surviving segment list, and the index the new active
/// segment should use.
struct Recovered {
    summary: RecoverySummary,
    segments: Vec<(u64, PathBuf)>,
    next_index: u64,
}

/// Replays every segment into `store`, truncating the newest segment's
/// torn tail.
fn recover_into(dir: &Path, store: &ShardedStore) -> stdio::Result<Recovered> {
    let segments = list_segments(dir)?;
    let mut summary = RecoverySummary {
        segments: segments.len() as u64,
        ..RecoverySummary::default()
    };
    let now = unix_now();
    let last_index = segments.len().checked_sub(1);
    for (pos, (_, path)) in segments.iter().enumerate() {
        let bytes = fs::read(path)?;
        let scan = record::scan(&bytes, |rec| match rec {
            Record::Set {
                key,
                value,
                flags,
                cost,
                expires_at,
            } => {
                if expires_at == 0 || expires_at > now {
                    // Eviction during replay is legal (smaller memory
                    // budget than the log's working set): best effort.
                    let _ = store.set(key, value, flags, expires_at, cost);
                } else {
                    // Expired while the server was down.
                    store.delete(key);
                }
            }
            Record::Delete { key } => {
                store.delete(key);
            }
            Record::Clear => store.flush_all(),
            Record::Touch { key, expires_at } => {
                store.touch(key, expires_at);
            }
            Record::Seal => {}
        });
        summary.records += scan.applied;
        summary.quarantined += scan.quarantined;
        summary.torn_bytes += scan.torn_bytes;
        if Some(pos) == last_index {
            summary.sealed = scan.sealed;
            if scan.torn_bytes > 0 {
                // Physically truncate the torn tail so the crash leaves
                // no trace for the next scan.
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len((bytes.len() as u64).saturating_sub(scan.torn_bytes))?;
            }
        }
    }
    let next_index = segments.last().map_or(0, |&(index, _)| index + 1);
    Ok(Recovered {
        summary,
        segments,
        next_index,
    })
}

impl Persist {
    /// Opens (or creates) the log under `options.data_dir`, replays it
    /// into `store`, truncates the torn tail, and arms a fresh active
    /// segment. The backend is [`FaultFs`] when the chaos plan carries
    /// disk-fault rates, [`RealFs`] otherwise.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation, segment reads,
    /// torn-tail truncation, or creating the new active segment — boot
    /// must not proceed on a data dir it cannot use.
    pub fn open(
        options: PersistOptions,
        fault_plan: &FaultPlan,
        store: &ShardedStore,
    ) -> stdio::Result<Persist> {
        let backend: Box<dyn IoBackend> = if fault_plan.has_disk_faults() {
            Box::new(FaultFs::new(Box::new(RealFs::new()), fault_plan))
        } else {
            Box::new(RealFs::new())
        };
        Persist::open_with_backend(options, backend, store)
    }

    /// [`Persist::open`] with an explicit backend (fault-injection tests
    /// construct arbitrary backends through this).
    ///
    /// # Errors
    ///
    /// Same as [`Persist::open`].
    pub fn open_with_backend(
        options: PersistOptions,
        mut backend: Box<dyn IoBackend>,
        store: &ShardedStore,
    ) -> stdio::Result<Persist> {
        fs::create_dir_all(&options.data_dir)?;
        let Recovered {
            summary,
            mut segments,
            next_index,
        } = recover_into(&options.data_dir, store)?;
        // Always start a fresh segment: recovered segments are immutable
        // history, never appended to again.
        let active = segment_path(&options.data_dir, next_index);
        backend.create(&active)?;
        segments.push((next_index, active));
        kvlog!(
            LogLevel::Info,
            "persist_recovered",
            segments = summary.segments,
            records = summary.records,
            quarantined = summary.quarantined,
            torn_bytes = summary.torn_bytes,
            sealed = summary.sealed,
            items = store.len() as u64,
        );
        Ok(Persist {
            writer: Mutex::new(LogWriter {
                backend,
                dir: options.data_dir.clone(),
                seg_index: next_index,
                committed: 0,
                consecutive_errors: 0,
                segments,
                scratch: Vec::new(),
                dirty: false,
            }),
            options,
            engine: EngineState::new(),
            errors: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            records: AtomicU64::new(0),
            recovered: AtomicU64::new(summary.records),
            quarantined: AtomicU64::new(summary.quarantined),
            torn_bytes: AtomicU64::new(summary.torn_bytes),
            snapshots: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        })
    }

    /// Whether the engine has tripped to `degraded`.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.engine.is_degraded()
    }

    /// Logs a successful store (`set`/`add`/`replace`/arith rewrite).
    pub fn append_set(
        &self,
        store: &ShardedStore,
        key: &[u8],
        value: &[u8],
        flags: u32,
        expires_at: u64,
        cost: u64,
    ) {
        self.append_record(
            store,
            &Record::Set {
                key,
                value,
                flags,
                cost,
                expires_at,
            },
        );
    }

    /// Logs a successful delete.
    pub fn append_delete(&self, store: &ShardedStore, key: &[u8]) {
        self.append_record(store, &Record::Delete { key });
    }

    /// Logs a successful touch.
    pub fn append_touch(&self, store: &ShardedStore, key: &[u8], expires_at: u64) {
        self.append_record(store, &Record::Touch { key, expires_at });
    }

    /// Logs a `flush_all`.
    pub fn append_clear(&self, store: &ShardedStore) {
        self.append_record(store, &Record::Clear);
    }

    fn append_record(&self, store: &ShardedStore, rec: &Record<'_>) {
        if self.is_degraded() {
            self.engine.note_dropped();
            return;
        }
        let writer = &mut *lock(&self.writer);
        self.append_locked(writer, store, rec);
    }

    fn append_locked(&self, w: &mut LogWriter, store: &ShardedStore, rec: &Record<'_>) {
        w.scratch.clear();
        record::encode_into(rec, &mut w.scratch);
        let len = w.scratch.len() as u64;
        match w.backend.append(&w.scratch) {
            Ok(()) => {
                w.committed += len;
                w.dirty = true;
                w.consecutive_errors = 0;
                // ordering: Relaxed(x2) — statistics counters; durability
                // state travels through the writer lock, not these.
                self.bytes.fetch_add(len, Ordering::Relaxed);
                self.records.fetch_add(1, Ordering::Relaxed);
                if self.options.fsync == FsyncMode::Always {
                    match w.backend.sync() {
                        Ok(()) => {
                            w.dirty = false;
                            // ordering: Relaxed — statistics counter.
                            self.fsyncs.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => self.note_io_error_locked(w),
                    }
                }
                if w.committed >= self.options.segment_bytes {
                    self.rotate_locked(w, store);
                }
            }
            Err(_) => {
                // A short write may have torn the tail; repair by
                // truncating back to the last committed offset.
                let repaired = w.backend.truncate(w.committed).is_ok();
                self.note_io_error_locked(w);
                if !repaired {
                    self.trip_locked(w);
                }
            }
        }
    }

    fn note_io_error_locked(&self, w: &mut LogWriter) {
        // ordering: Relaxed — statistics counter.
        self.errors.fetch_add(1, Ordering::Relaxed);
        w.consecutive_errors = w.consecutive_errors.saturating_add(1);
        if w.consecutive_errors >= self.options.trip_after {
            self.trip_locked(w);
        }
    }

    fn trip_locked(&self, w: &mut LogWriter) {
        if self.engine.trip() {
            kvlog!(
                LogLevel::Warn,
                "persist_degraded",
                consecutive_errors = u64::from(w.consecutive_errors),
                // ordering: Relaxed — log-line statistic.
                errors = self.errors.load(Ordering::Relaxed),
                hint = "cache keeps serving from memory; background retry will re-arm the log",
            );
        }
    }

    /// Rotates the active segment: a plain roll while few segments are
    /// live, a compaction snapshot once `keep_segments` accumulate.
    fn rotate_locked(&self, w: &mut LogWriter, store: &ShardedStore) {
        let result = if w.segments.len() >= self.options.keep_segments {
            self.compact_locked(w, store)
        } else {
            self.roll_locked(w)
        };
        if result.is_err() {
            self.note_io_error_locked(w);
        }
    }

    fn roll_locked(&self, w: &mut LogWriter) -> stdio::Result<()> {
        let index = w.seg_index + 1;
        let path = segment_path(&w.dir, index);
        w.backend.create(&path)?;
        w.seg_index = index;
        w.committed = 0;
        w.dirty = false;
        w.segments.push((index, path));
        Ok(())
    }

    /// Compaction-by-snapshot: roll to a fresh segment, write a
    /// [`Record::Clear`] followed by one set per live item, fsync, and
    /// only then delete the older segments. Because the snapshot *leads*
    /// with `Clear`, a failed deletion is harmless — replay applies the
    /// stale history and then wipes it. A failed snapshot truncates the
    /// aborted segment to zero (removing the dangerous `Clear`) and
    /// keeps the old segments; if even that repair fails the engine
    /// trips to degraded so the next re-arm rebuilds from the live
    /// store.
    fn compact_locked(&self, w: &mut LogWriter, store: &ShardedStore) -> stdio::Result<()> {
        self.roll_locked(w)?;
        match self.snapshot_locked(w, store) {
            Ok(()) => {
                let active = w.seg_index;
                let stale: Vec<PathBuf> = w
                    .segments
                    .iter()
                    .filter(|&&(index, _)| index != active)
                    .map(|(_, path)| path.clone())
                    .collect();
                w.segments.retain(|&(index, _)| index == active);
                for path in &stale {
                    let _ = w.backend.remove(path);
                }
                // ordering: Relaxed — statistics counter.
                self.snapshots.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(err) => {
                if w.backend.truncate(0).is_err() {
                    self.trip_locked(w);
                }
                w.committed = 0;
                w.dirty = false;
                Err(err)
            }
        }
    }

    /// Writes `Clear` + one `Set` per live item into the (fresh) active
    /// segment and fsyncs it. On success `w.committed` reflects the
    /// snapshot size.
    fn snapshot_locked(&self, w: &mut LogWriter, store: &ShardedStore) -> stdio::Result<()> {
        const FLUSH_BYTES: usize = 256 * 1024;
        let LogWriter {
            backend, scratch, ..
        } = w;
        scratch.clear();
        record::encode_into(&Record::Clear, scratch);
        let mut written = 0u64;
        let mut records = 1u64;
        let mut failed: Option<stdio::Error> = None;
        store.for_each_item(|item| {
            if failed.is_some() {
                return;
            }
            record::encode_into(
                &Record::Set {
                    key: item.key,
                    value: item.value,
                    flags: item.flags,
                    cost: item.cost,
                    expires_at: item.expires_at,
                },
                scratch,
            );
            records += 1;
            if scratch.len() >= FLUSH_BYTES {
                match backend.append(scratch) {
                    Ok(()) => {
                        written += scratch.len() as u64;
                        scratch.clear();
                    }
                    Err(err) => failed = Some(err),
                }
            }
        });
        if let Some(err) = failed {
            return Err(err);
        }
        if !scratch.is_empty() {
            backend.append(scratch)?;
            written += scratch.len() as u64;
            scratch.clear();
        }
        backend.sync()?;
        w.committed = written;
        w.dirty = false;
        // ordering: Relaxed(x3) — statistics counters.
        self.bytes.fetch_add(written, Ordering::Relaxed);
        self.records.fetch_add(records, Ordering::Relaxed);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// One degraded-recovery attempt: start a fresh segment and write a
    /// full snapshot of the live store into it. On success the log
    /// exactly mirrors the cache (no silent gap from the records dropped
    /// while degraded), older segments are deleted, and the engine
    /// re-arms. Returns `true` when the engine is active afterwards.
    pub fn try_rearm(&self, store: &ShardedStore) -> bool {
        if !self.is_degraded() {
            return true;
        }
        let w = &mut *lock(&self.writer);
        let index = w.seg_index + 1;
        let path = segment_path(&w.dir, index);
        if w.backend.create(&path).is_err() {
            // ordering: Relaxed — statistics counter.
            self.errors.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        w.seg_index = index;
        w.committed = 0;
        w.dirty = false;
        w.segments.push((index, path.clone()));
        match self.snapshot_locked(w, store) {
            Ok(()) => {
                let stale: Vec<PathBuf> = w
                    .segments
                    .iter()
                    .filter(|&&(i, _)| i != index)
                    .map(|(_, p)| p.clone())
                    .collect();
                w.segments.retain(|&(i, _)| i == index);
                for p in &stale {
                    let _ = w.backend.remove(p);
                }
                w.consecutive_errors = 0;
                // ordering: Relaxed — statistics counter.
                self.snapshots.fetch_add(1, Ordering::Relaxed);
                self.engine.rearm();
                kvlog!(
                    LogLevel::Info,
                    "persist_rearmed",
                    items = store.len() as u64,
                    // ordering: Relaxed — log-line statistic.
                    errors = self.errors.load(Ordering::Relaxed),
                );
                true
            }
            Err(_) => {
                // ordering: Relaxed — statistics counter.
                self.errors.fetch_add(1, Ordering::Relaxed);
                // Scrap the aborted attempt entirely; the next retry
                // starts clean.
                let _ = w.backend.truncate(0);
                let _ = w.backend.remove(&path);
                w.segments.retain(|&(i, _)| i != index);
                w.committed = 0;
                false
            }
        }
    }

    /// Fsyncs the active segment if it has unsynced bytes (the interval
    /// mode's background flush).
    pub fn sync_now(&self) {
        if self.is_degraded() {
            return;
        }
        let w = &mut *lock(&self.writer);
        if !w.dirty {
            return;
        }
        match w.backend.sync() {
            Ok(()) => {
                w.dirty = false;
                // ordering: Relaxed — statistics counter.
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => self.note_io_error_locked(w),
        }
    }

    /// Appends a [`Record::Seal`] and fsyncs: the drain path's clean
    /// shutdown marker. Recovery reports `sealed = true` when the newest
    /// segment ends with one.
    pub fn seal(&self) {
        if self.is_degraded() {
            return;
        }
        let w = &mut *lock(&self.writer);
        w.scratch.clear();
        record::encode_into(&Record::Seal, &mut w.scratch);
        let len = w.scratch.len() as u64;
        if w.backend.append(&w.scratch).is_ok() {
            w.committed += len;
            // ordering: Relaxed(x3) — statistics counters.
            self.bytes.fetch_add(len, Ordering::Relaxed);
            self.records.fetch_add(1, Ordering::Relaxed);
            if w.backend.sync().is_ok() {
                w.dirty = false;
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Asks the background loop to exit at its next tick.
    pub fn request_stop(&self) {
        // ordering: Release — pairs with the loop's Acquire load so work
        // done before the stop request is visible to the loop's last tick.
        self.stop.store(true, Ordering::Release);
    }

    /// The background maintenance loop (run on a dedicated thread):
    /// interval fsync while active, jittered-exponential-backoff re-arm
    /// attempts while degraded. Returns when [`Persist::request_stop`]
    /// is called.
    pub fn background_loop(&self, store: &ShardedStore) {
        const TICK: Duration = Duration::from_millis(20);
        const BACKOFF_BASE_MS: u64 = 50;
        const BACKOFF_CAP_MS: u64 = 2_000;
        let mut rng = Rng64::seed_from_u64(0xBAC0_FF5E);
        let mut last_fsync = Instant::now();
        let mut next_retry = Instant::now();
        let mut attempts: u32 = 0;
        // ordering: Acquire — pairs with `request_stop`'s Release store.
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(TICK);
            if self.is_degraded() {
                if Instant::now() < next_retry {
                    continue;
                }
                if self.try_rearm(store) {
                    attempts = 0;
                } else {
                    attempts = attempts.saturating_add(1);
                    let base = (BACKOFF_BASE_MS << attempts.min(5)).min(BACKOFF_CAP_MS);
                    let jitter = rng.range_u64(0, base / 2 + 1);
                    next_retry = Instant::now() + Duration::from_millis(base + jitter);
                }
            } else if self.options.fsync == FsyncMode::Interval
                && last_fsync.elapsed() >= self.options.fsync_interval
            {
                self.sync_now();
                last_fsync = Instant::now();
            }
        }
    }

    /// The telemetry counters, read without blocking appends for long
    /// (one brief lock for the segment count).
    #[must_use]
    pub fn snapshot(&self) -> PersistSnapshot {
        let segments = lock(&self.writer).segments.len() as u64;
        PersistSnapshot {
            state: if self.is_degraded() {
                "degraded"
            } else {
                "active"
            },
            // ordering: Relaxed(x8) — statistics counters; the snapshot
            // is advisory and never gates an operation.
            errors: self.errors.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            dropped: self.engine.dropped(),
            recovered: self.recovered.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            torn_bytes: self.torn_bytes.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            trips: self.engine.trips(),
            rearms: self.engine.rearms(),
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::SlabConfig;
    use crate::store::{EvictionMode, StoreConfig};
    use camp_core::Precision;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("camp-persist-{tag}-{}-{seq}", std::process::id()))
    }

    fn sharded() -> ShardedStore {
        ShardedStore::new(
            StoreConfig {
                slab: SlabConfig::small(16 * 1024, 64),
                eviction: EvictionMode::Camp(Precision::Bits(5)),
            },
            4,
        )
    }

    fn options(dir: &Path) -> PersistOptions {
        PersistOptions {
            fsync: FsyncMode::Never,
            ..PersistOptions::new(dir)
        }
    }

    fn open_plain(opts: PersistOptions, store: &ShardedStore) -> Persist {
        Persist::open(opts, &FaultPlan::default(), store).expect("open persist")
    }

    #[test]
    fn fsync_mode_parses_and_displays() {
        for mode in [FsyncMode::Always, FsyncMode::Interval, FsyncMode::Never] {
            assert_eq!(mode.to_string().parse::<FsyncMode>(), Ok(mode));
        }
        assert!("sometimes".parse::<FsyncMode>().is_err());
    }

    #[test]
    fn warm_restart_round_trips_values_flags_ttls_and_costs() {
        let dir = temp_dir("roundtrip");
        let store = sharded();
        let persist = open_plain(options(&dir), &store);
        let far = unix_now() + 10_000;
        for i in 0..50u32 {
            let key = format!("key-{i}");
            let value = format!("value-{i}");
            store
                .set(key.as_bytes(), value.as_bytes(), i, 0, u64::from(i) * 7)
                .expect("set");
            persist.append_set(
                &store,
                key.as_bytes(),
                value.as_bytes(),
                i,
                0,
                u64::from(i) * 7,
            );
        }
        store.touch(b"key-3", far);
        persist.append_touch(&store, b"key-3", far);
        store.delete(b"key-7");
        persist.append_delete(&store, b"key-7");
        persist.seal();
        drop(persist);

        let recovered = sharded();
        let reopened = open_plain(options(&dir), &recovered);
        assert_eq!(recovered.len(), 49);
        assert!(!recovered.contains(b"key-7"));
        for i in 0..50u32 {
            if i == 7 {
                continue;
            }
            let key = format!("key-{i}");
            let hit = recovered.get(key.as_bytes()).expect("recovered key");
            assert_eq!(hit.value, format!("value-{i}").as_bytes());
            assert_eq!(hit.flags, i, "flags survive restart");
            assert_eq!(hit.cost, u64::from(i) * 7, "CAMP cost survives restart");
        }
        assert_eq!(
            recovered.peek_meta(b"key-3").expect("touched key").1,
            far,
            "touched expiry survives restart"
        );
        let snap = reopened.snapshot();
        assert_eq!(snap.state, "active");
        assert_eq!(snap.recovered, 53, "50 sets + touch + delete + seal");
        assert_eq!(snap.quarantined, 0);
        assert_eq!(snap.torn_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = temp_dir("torn");
        let store = sharded();
        let persist = open_plain(options(&dir), &store);
        store.set(b"good", b"value", 0, 0, 1).expect("set");
        persist.append_set(&store, b"good", b"value", 0, 0, 1);
        drop(persist);
        // Simulate a crash mid-write: a frame header promising more
        // bytes than exist.
        let seg = segment_path(&dir, 0);
        let mut torn = record::MAGIC.to_be_bytes().to_vec();
        torn.extend_from_slice(&100u32.to_be_bytes());
        torn.extend_from_slice(&0u32.to_be_bytes());
        torn.extend_from_slice(&[0xAA; 10]);
        let before = fs::read(&seg).expect("read segment").len();
        let mut file = OpenOptions::new().append(true).open(&seg).expect("open");
        stdio::Write::write_all(&mut file, &torn).expect("tear");
        drop(file);

        let recovered = sharded();
        let reopened = open_plain(options(&dir), &recovered);
        assert_eq!(recovered.get(b"good").expect("survives").value, b"value");
        let snap = reopened.snapshot();
        assert_eq!(snap.torn_bytes, torn.len() as u64);
        assert_eq!(
            fs::read(&seg).expect("reread").len(),
            before,
            "torn tail physically truncated"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mid_log_records_are_quarantined_not_served() {
        let dir = temp_dir("quarantine");
        let store = sharded();
        let persist = open_plain(options(&dir), &store);
        for i in 0..10u32 {
            let key = format!("k{i}");
            persist.append_set(&store, key.as_bytes(), b"payload-bytes", 0, 0, 1);
        }
        drop(persist);
        // Flip one byte in the middle of the segment.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&seg, &bytes).expect("rewrite");

        let recovered = sharded();
        let reopened = open_plain(options(&dir), &recovered);
        let snap = reopened.snapshot();
        assert!(snap.quarantined >= 1, "corruption must be counted");
        assert!(snap.recovered >= 8, "untouched records still replay");
        for i in 0..10u32 {
            let key = format!("k{i}");
            if let Some(hit) = recovered.get(key.as_bytes()) {
                assert_eq!(hit.value, b"payload-bytes", "no corrupt value served");
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_compacts_and_bounds_segment_count() {
        let dir = temp_dir("compact");
        let store = sharded();
        let opts = PersistOptions {
            segment_bytes: 2048,
            keep_segments: 3,
            ..options(&dir)
        };
        let persist = open_plain(opts, &store);
        for i in 0..200u32 {
            let key = format!("key-{i:04}");
            let value = [b'v'; 48];
            store.set(key.as_bytes(), &value, 0, 0, 9).expect("set");
            persist.append_set(&store, key.as_bytes(), &value, 0, 0, 9);
        }
        let snap = persist.snapshot();
        assert!(snap.snapshots >= 1, "compaction must have run");
        assert!(
            snap.segments <= 4,
            "segment count stays bounded, got {}",
            snap.segments
        );
        drop(persist);
        let recovered = sharded();
        let _reopened = open_plain(options(&dir), &recovered);
        assert_eq!(recovered.len(), 200, "compaction preserves every key");
        assert_eq!(
            recovered.get(b"key-0123").expect("hit").cost,
            9,
            "costs survive compaction"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_replays_as_flush() {
        let dir = temp_dir("clear");
        let store = sharded();
        let persist = open_plain(options(&dir), &store);
        store.set(b"before", b"x", 0, 0, 1).expect("set");
        persist.append_set(&store, b"before", b"x", 0, 0, 1);
        store.flush_all();
        persist.append_clear(&store);
        store.set(b"after", b"y", 0, 0, 1).expect("set");
        persist.append_set(&store, b"after", b"y", 0, 0, 1);
        drop(persist);

        let recovered = sharded();
        let _reopened = open_plain(options(&dir), &recovered);
        assert!(!recovered.contains(b"before"));
        assert_eq!(recovered.get(b"after").expect("hit").value, b"y");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_records_are_not_resurrected() {
        let dir = temp_dir("expired");
        let store = sharded();
        let persist = open_plain(options(&dir), &store);
        persist.append_set(&store, b"stale", b"x", 0, 1, 1); // expired long ago
        persist.append_set(&store, b"fresh", b"y", 0, unix_now() + 3600, 1);
        drop(persist);
        let recovered = sharded();
        let _reopened = open_plain(options(&dir), &recovered);
        assert!(!recovered.contains(b"stale"));
        assert!(recovered.contains(b"fresh"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_faults_trip_degraded_and_rearm_restores_the_log() {
        let dir = temp_dir("degraded");
        let store = sharded();
        let plan = FaultPlan {
            enospc_rate: 0.4,
            seed: 1234,
            ..FaultPlan::default()
        };
        let opts = PersistOptions {
            trip_after: 2,
            ..options(&dir)
        };
        let persist = Persist::open(opts, &plan, &store).expect("open");
        for i in 0..400u32 {
            let key = format!("key-{i}");
            store.set(key.as_bytes(), b"value", 0, 0, 5).expect("set");
            persist.append_set(&store, key.as_bytes(), b"value", 0, 0, 5);
            if persist.is_degraded() {
                break;
            }
        }
        assert!(
            persist.is_degraded(),
            "a 40% fault rate must trip trip_after=2 within 400 appends"
        );
        // Appends while degraded are dropped, not blocked — the cache
        // itself keeps accepting the write.
        store.set(b"while-down", b"value", 0, 0, 5).expect("set");
        persist.append_set(&store, b"while-down", b"value", 0, 0, 5);
        let snap = persist.snapshot();
        assert_eq!(snap.state, "degraded");
        assert!(snap.errors >= 2);
        assert!(snap.dropped >= 1);
        // The seeded fault stream is deterministic, so re-arm retries
        // eventually land a full snapshot.
        let mut rearmed = false;
        for _ in 0..500 {
            if persist.try_rearm(&store) {
                rearmed = true;
                break;
            }
        }
        assert!(rearmed, "re-arm must eventually succeed at 40% fault rate");
        let snap = persist.snapshot();
        assert_eq!(snap.state, "active");
        assert!(snap.rearms >= 1);
        drop(persist);
        // The re-armed log is a full snapshot of the live store: every
        // key present at re-arm time recovers, including the ones whose
        // appends were dropped while degraded.
        let recovered = sharded();
        let _reopened = open_plain(options(&dir), &recovered);
        assert_eq!(recovered.len(), store.len());
        assert!(recovered.contains(b"while-down"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_loop_interval_fsyncs_and_stops() {
        let dir = temp_dir("bg");
        let store = Arc::new(sharded());
        let opts = PersistOptions {
            fsync: FsyncMode::Interval,
            fsync_interval: Duration::from_millis(30),
            ..PersistOptions::new(&dir)
        };
        let persist = Arc::new(open_plain(opts, &store));
        let bg = {
            let persist = Arc::clone(&persist);
            let store = Arc::clone(&store);
            std::thread::spawn(move || persist.background_loop(&store))
        };
        persist.append_set(&store, b"k", b"v", 0, 0, 1);
        std::thread::sleep(Duration::from_millis(250));
        persist.request_stop();
        bg.join().expect("background thread joins");
        assert!(
            persist.snapshot().fsyncs >= 1,
            "interval mode must fsync dirty bytes in the background"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_flag_reflects_clean_shutdown() {
        let dir = temp_dir("seal");
        let store = sharded();
        let persist = open_plain(options(&dir), &store);
        persist.append_set(&store, b"k", b"v", 0, 0, 1);
        persist.seal();
        drop(persist);
        let recovered = recover_into(&dir, &sharded()).expect("recover");
        assert!(
            recovered.summary.sealed,
            "seal record marks a clean shutdown"
        );
        // A reboot arms a fresh (empty) active segment; scanning after
        // it reports unsealed, because the new segment has no seal.
        drop(open_plain(options(&dir), &sharded()));
        let recovered = recover_into(&dir, &sharded()).expect("recover again");
        assert!(!recovered.summary.sealed);
        fs::remove_dir_all(&dir).ok();
    }
}
