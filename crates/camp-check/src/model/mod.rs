//! The model checker runtime: version vectors, the memory-model kernel, the
//! schedule search (DFS + DPOR + preemption bounding + sampling), the
//! OS-thread execution harness, and the modeled `sync` primitive types.

pub mod api;
pub mod atomic;
pub(crate) mod exec;
pub(crate) mod kernel;
pub mod mutex;
pub(crate) mod rng;
pub(crate) mod search;
pub mod thread;
pub(crate) mod vv;
