//! Crash-recovery harness: SIGKILL a real `camp-kvsd` process mid-write,
//! restart it on the same `--data-dir`, and check that what it serves is a
//! *prefix-consistent*, never-corrupt view of what was acknowledged.
//!
//! The main test runs 25 seeded rounds. Each round boots the daemon
//! out-of-process (so the kill is a genuine `SIGKILL`, not an in-process
//! shortcut), verifies the recovered state against the ledger of every
//! write ever sent, then hammers sets from a writer thread until the main
//! thread kills the process at a seeded random point — which can land in
//! the middle of a disk write, leaving a torn tail for the next boot to
//! truncate. Rounds alternate `--fsync always` and `--fsync interval`:
//!
//! * a value served after recovery must byte-match `v-<key>-<seq>` for a
//!   sequence number that was actually sent (no corruption, no invented
//!   data, no reordering past the newest write);
//! * a write acknowledged under `--fsync always` must never disappear,
//!   even many rounds (and compactions) later;
//! * under `--fsync interval`, missing recent writes are bounded loss and
//!   allowed — serving a *stale* acknowledged value is fine, serving a
//!   *mangled* one never is.
//!
//! The small segment size (64 KiB) forces many rotations and several
//! compaction snapshots over the run, so crash-during-compaction is
//! exercised too, not just crash-during-append.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use camp_core::rng::Rng64;
use camp_core::Precision;
use camp_kvs::client::Client;
use camp_kvs::persist::PersistOptions;
use camp_kvs::server::{Server, ServerOptions};
use camp_kvs::slab::SlabConfig;
use camp_kvs::store::{EvictionMode, StoreConfig};

/// SIGKILL rounds (each one verified by the next boot's recovery).
const ROUNDS: usize = 25;
/// Distinct keys the writer cycles through.
const KEYS: u64 = 64;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "camp-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).expect("create temp data dir");
    dir
}

fn key_name(k: u64) -> String {
    format!("key{k:03}")
}

fn value_for(k: u64, seq: u64) -> String {
    format!("v-{}-{seq:08}", key_name(k))
}

/// A spawned `camp-kvsd` child and the address its ready banner reported.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// SIGKILLs the daemon (`Child::kill` is SIGKILL on Unix) and reaps it.
    fn sigkill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Boots the real daemon binary against `data_dir` and blocks until its
/// `camp_kvsd_ready` banner names the bound address. A daemon that dies
/// during recovery (panic, corrupt-log crash) fails the test here.
fn spawn_daemon(data_dir: &Path, fsync: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_camp-kvsd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
            "--fsync",
            fsync,
            "--segment-bytes",
            "65536",
            "--log-level",
            "info",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn camp-kvsd");
    let stderr = child.stderr.take().expect("child stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    let mut addr = None;
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read daemon stderr");
        if n == 0 {
            break; // EOF: the daemon died before becoming ready.
        }
        if line.contains("event=camp_kvsd_ready") {
            addr = line
                .split_whitespace()
                .find_map(|token| token.strip_prefix("addr="))
                .map(str::to_owned);
            break;
        }
    }
    // Drain the remaining stderr so the daemon never blocks on the pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    let addr = addr.unwrap_or_else(|| {
        let _ = child.kill();
        let _ = child.wait();
        panic!("camp-kvsd exited without a ready banner (recovery crash?)");
    });
    Daemon { child, addr }
}

/// A raw text-protocol connection: no retries, no reconnects, so an `Ok`
/// from `set` means the server itself acknowledged the write.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn dial(addr: &str) -> io::Result<Wire> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(Wire {
        reader: BufReader::new(stream.try_clone()?),
        writer: stream,
    })
}

impl Wire {
    fn read_line(&mut self, line: &mut Vec<u8>) -> io::Result<()> {
        line.clear();
        if self.reader.read_until(b'\n', line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
        }
        while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            line.pop();
        }
        Ok(())
    }

    /// Sends one `set` and waits for the reply; `Ok(true)` is an ack.
    fn set(&mut self, key: &str, value: &str) -> io::Result<bool> {
        let mut request = Vec::new();
        write!(request, "set {key} 0 0 {}\r\n{value}\r\n", value.len())?;
        self.writer.write_all(&request)?;
        let mut line = Vec::new();
        self.read_line(&mut line)?;
        Ok(line == b"STORED")
    }

    /// Fetches one key with a strict parse: anything other than a clean
    /// miss or a well-formed single-value reply panics (corruption).
    fn get_strict(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        let mut request = Vec::new();
        write!(request, "get {key}\r\n")?;
        self.writer.write_all(&request)?;
        let mut line = Vec::new();
        self.read_line(&mut line)?;
        if line == b"END" {
            return Ok(None);
        }
        let header = String::from_utf8(line.clone()).expect("utf-8 VALUE header");
        let tokens: Vec<&str> = header.split(' ').collect();
        assert_eq!(tokens.len(), 4, "malformed VALUE header: {header:?}");
        assert_eq!(tokens[0], "VALUE", "malformed reply: {header:?}");
        assert_eq!(tokens[1], key, "reply names the wrong key: {header:?}");
        let len: usize = tokens[3].parse().expect("numeric VALUE length");
        let mut data = vec![0u8; len + 2];
        self.reader.read_exact(&mut data)?;
        assert_eq!(&data[len..], b"\r\n", "data block not CRLF-terminated");
        data.truncate(len);
        self.read_line(&mut line)?;
        assert_eq!(line, b"END", "VALUE block not closed by END");
        Ok(Some(data))
    }
}

/// The test's ledger of what has ever been sent to (and acked by) the
/// daemon, across all rounds.
#[derive(Default)]
struct Ledger {
    /// Highest sequence number ever *sent* per key (acked or not).
    max_sent: BTreeMap<u64, u64>,
    /// Highest sequence number known *durable* per key: acked under
    /// `--fsync always`, or observed surviving a recovery.
    durable: BTreeMap<u64, u64>,
}

/// Per-round counters the writer thread fills in while it hammers sets.
#[derive(Default)]
struct RoundLog {
    sent: BTreeMap<u64, u64>,
    acked: BTreeMap<u64, u64>,
}

/// Reads back every key and checks it against the ledger. Returns how
/// many keys were present.
fn verify_recovery(addr: &str, ledger: &mut Ledger, round: usize) -> usize {
    let mut wire = dial(addr).expect("dial recovered daemon");
    let mut present = 0usize;
    for k in 0..KEYS {
        let got = wire
            .get_strict(&key_name(k))
            .expect("read from recovered daemon");
        let max_sent = ledger.max_sent.get(&k).copied().unwrap_or(0);
        let durable = ledger.durable.get(&k).copied().unwrap_or(0);
        match got {
            Some(data) => {
                present += 1;
                let text = String::from_utf8(data).unwrap_or_else(|_| {
                    panic!("round {round}: key {k} recovered non-utf8 garbage")
                });
                let prefix = format!("v-{}-", key_name(k));
                let seq: u64 = text
                    .strip_prefix(&prefix)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        panic!("round {round}: key {k} recovered corrupt value {text:?}")
                    });
                assert_eq!(
                    text,
                    value_for(k, seq),
                    "round {round}: key {k} value does not round-trip"
                );
                assert!(
                    seq <= max_sent,
                    "round {round}: key {k} recovered seq {seq} was never sent \
                     (max sent {max_sent})"
                );
                assert!(
                    seq >= durable,
                    "round {round}: key {k} lost a durable write: recovered seq \
                     {seq} < durable floor {durable}"
                );
                // Whatever recovery served is back in the on-disk log.
                ledger.durable.insert(k, seq);
            }
            None => {
                assert_eq!(
                    durable, 0,
                    "round {round}: key {k} vanished despite a durable write at \
                     seq {durable}"
                );
            }
        }
    }
    present
}

/// 25 rounds of boot → verify recovery → write under load → SIGKILL,
/// alternating fsync modes, plus one final verifying boot.
#[test]
fn sigkill_rounds_recover_prefix_consistent_state() {
    let dir = temp_dir("sigkill");
    let mut rng = Rng64::seed_from_u64(0xC4A5_0CC1);
    let mut ledger = Ledger::default();
    let mut next_seq = 1u64;

    for round in 0..ROUNDS {
        let always = round % 2 == 0;
        let fsync = if always { "always" } else { "interval" };
        let daemon = spawn_daemon(&dir, fsync);
        verify_recovery(&daemon.addr, &mut ledger, round);

        // Writer thread: stream sets until the socket dies under it. The
        // round log rides back through the join handle — the main thread
        // only reads it after `join()`, so no lock is needed.
        let addr = daemon.addr.clone();
        let first_seq = next_seq;
        let writer = std::thread::spawn(move || {
            let mut log = RoundLog::default();
            let Ok(mut wire) = dial(&addr) else {
                return log;
            };
            let mut seq = first_seq;
            loop {
                let k = seq % KEYS;
                log.sent.insert(k, seq);
                match wire.set(&key_name(k), &value_for(k, seq)) {
                    Ok(true) => {
                        log.acked.insert(k, seq);
                    }
                    Ok(false) => {}  // e.g. rejected under memory pressure
                    Err(_) => break, // the SIGKILL landed
                }
                seq += 1;
            }
            log
        });

        // Let the writer run for a seeded slice, then pull the plug.
        std::thread::sleep(Duration::from_millis(rng.range_u64(30, 220)));
        daemon.sigkill();
        let log = writer.join().expect("writer thread");
        for (&k, &seq) in &log.sent {
            let entry = ledger.max_sent.entry(k).or_insert(0);
            *entry = (*entry).max(seq);
        }
        if always {
            for (&k, &seq) in &log.acked {
                let entry = ledger.durable.entry(k).or_insert(0);
                *entry = (*entry).max(seq);
            }
        }
        next_seq = log.sent.values().copied().max().unwrap_or(next_seq) + 1;
    }

    // One last boot to verify the final kill's recovery, then clean up.
    let daemon = spawn_daemon(&dir, "always");
    let present = verify_recovery(&daemon.addr, &mut ledger, ROUNDS);
    assert!(
        present > 0,
        "after {ROUNDS} rounds of writes, recovery served nothing at all"
    );
    daemon.sigkill();
    std::fs::remove_dir_all(&dir).ok();
}

/// In-process warm restart: a sealed shutdown followed by a boot on the
/// same data dir serves the same values and flags over the wire.
#[test]
fn warm_restart_preserves_values_and_flags_end_to_end() {
    let dir = temp_dir("warm");
    let options = || {
        let mut options = ServerOptions::new(StoreConfig {
            slab: SlabConfig::small(64 * 1024, 16),
            eviction: EvictionMode::Camp(Precision::Bits(5)),
        });
        options.persist = Some(PersistOptions::new(&dir));
        options
    };

    let server = Server::start_with("127.0.0.1:0", options()).expect("cold boot");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for i in 0..50u32 {
        let key = format!("wk-{i:04}");
        let value = format!("wv-{i:04}");
        assert!(client.set(key.as_bytes(), value.as_bytes(), i, 0).unwrap());
    }
    // Drop a key too: the delete must also survive the restart.
    assert!(client.delete(b"wk-0007").unwrap());
    client.quit().unwrap();
    server.shutdown(); // seals the log

    let server = Server::start_with("127.0.0.1:0", options()).expect("warm boot");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    for i in 0..50u32 {
        let key = format!("wk-{i:04}");
        let got = client.get(key.as_bytes()).unwrap();
        if i == 7 {
            assert!(got.is_none(), "deleted key resurrected by recovery");
            continue;
        }
        let value = got.expect("value survived the restart");
        assert_eq!(value.data, format!("wv-{i:04}").as_bytes());
        assert_eq!(value.flags, i, "flags survived the restart");
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats["curr_items"], "49");
    client.quit().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
