//! Offline what-if profiling: the server's online [`ShadowProfiler`]
//! replayed against a recorded trace.
//!
//! The KVS server answers "what would the hit rate be at half / double
//! the capacity?" online via spatially sampled shadow caches. This module
//! drives the *same* profiler over an offline [`Trace`], which serves two
//! purposes:
//!
//! * capacity planning from recorded traces without standing up a server;
//! * validating the sampling estimator itself — at modulus 1 (sample
//!   everything) the 1x shadow is an exact re-simulation, so its hit
//!   ratio must agree with [`crate::simulate`] ground truth, and sampled
//!   runs can be checked against it for estimator bias.
//!
//! The feeding convention mirrors the server's split cycle: every trace
//! record is a lookup ([`ShadowProfiler::record_get`]) followed by a
//! store ([`ShadowProfiler::record_set`]), exactly the request
//! generator's "on miss, insert the pair" loop of the paper's §3 — the
//! shadow policies themselves decide what each hypothetical capacity
//! would have retained.

use camp_policies::{EvictionMode, ShadowEstimate, ShadowProfiler};
use camp_workload::Trace;

/// What one offline profiling pass produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Estimates per hypothetical scale, ascending capacity order.
    pub estimates: Vec<ShadowEstimate>,
    /// Total trace records observed (sampled or not).
    pub total_gets: u64,
    /// The sampling modulus used (keys sampled at rate `1/modulus`).
    pub modulus: u64,
}

/// Replays `trace` through a [`ShadowProfiler`] for a cache of `capacity`
/// bytes running `mode`, sampling keys at rate `1/modulus`.
///
/// # Panics
///
/// Panics if `modulus` is zero (propagated from
/// [`ShadowProfiler::with_modulus`]).
///
/// # Examples
///
/// ```
/// use camp_sim::profile_trace;
/// use camp_workload::BgConfig;
///
/// let trace = BgConfig::paper_scaled(500, 5_000, 1).generate();
/// let capacity = trace.stats().unique_bytes / 4;
/// let report = profile_trace(&"camp".parse().unwrap(), capacity, 1, &trace);
/// assert_eq!(report.estimates.len(), 3);
/// ```
#[must_use]
pub fn profile_trace(
    mode: &EvictionMode,
    capacity: u64,
    modulus: u64,
    trace: &Trace,
) -> ProfileReport {
    let mut profiler = ShadowProfiler::with_modulus(mode, capacity, modulus);
    for record in trace.iter() {
        profiler.record_get(&record.key, record.size, record.cost);
        profiler.record_set(&record.key, record.size, record.cost);
    }
    ProfileReport {
        estimates: profiler.estimates(),
        total_gets: profiler.total_gets(),
        modulus: profiler.modulus(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use camp_workload::BgConfig;

    fn trace() -> Trace {
        BgConfig::paper_scaled(800, 20_000, 7).generate()
    }

    #[test]
    fn hit_ratio_is_monotone_in_capacity() {
        let trace = trace();
        let capacity = trace.stats().unique_bytes / 4;
        let report = profile_trace(&"lru".parse().unwrap(), capacity, 1, &trace);
        assert_eq!(report.total_gets, trace.len() as u64);
        let [half, same, double] = report.estimates.as_slice() else {
            panic!("expected three scales: {report:?}");
        };
        assert!(half.capacity < same.capacity && same.capacity < double.capacity);
        assert!(
            half.hit_ratio <= same.hit_ratio && same.hit_ratio <= double.hit_ratio,
            "hit ratio must grow with capacity: {report:?}"
        );
        assert!(
            half.est_miss_cost >= double.est_miss_cost,
            "smaller cache misses cost more: {report:?}"
        );
    }

    #[test]
    fn unsampled_one_x_estimate_matches_ground_truth() {
        let trace = trace();
        let capacity = trace.stats().unique_bytes / 4;
        let mode: EvictionMode = "lru".parse().unwrap();
        let report = profile_trace(&mode, capacity, 1, &trace);
        let shadow = &report.estimates[1];
        assert_eq!(shadow.scale, (1, 1));

        let mut policy = mode.build(capacity);
        let truth = simulate(policy.as_mut(), &trace);
        // Ground truth excludes cold (first-touch) requests; the shadow
        // counts every lookup, so compare on the same denominator.
        let truth_ratio = truth.metrics.hits as f64 / trace.len() as f64;
        assert!(
            (shadow.hit_ratio - truth_ratio).abs() < 0.01,
            "unsampled shadow must re-simulate exactly: shadow {} vs truth {}",
            shadow.hit_ratio,
            truth_ratio,
        );
    }

    #[test]
    fn sampled_estimate_tracks_the_unsampled_one() {
        let trace = trace();
        let capacity = trace.stats().unique_bytes / 4;
        let mode: EvictionMode = "camp".parse().unwrap();
        let full = profile_trace(&mode, capacity, 1, &trace);
        let sampled = profile_trace(&mode, capacity, 4, &trace);
        assert!(sampled.estimates[1].sampled_gets < full.estimates[1].sampled_gets);
        let err = (sampled.estimates[1].hit_ratio - full.estimates[1].hit_ratio).abs();
        assert!(
            err < 0.15,
            "1/4 sampling should stay near the full estimate (err {err}): \
             sampled {:?} vs full {:?}",
            sampled.estimates[1],
            full.estimates[1],
        );
    }
}
