//! Admission control wrappers — the paper's §6 future-work direction.
//!
//! "Another important direction to explore is the use of admission control
//! policies in conjunction with CAMP that also considers variations in
//! key-value sizes and costs. This should enhance the performance of CAMP by
//! not inserting unpopular key-value pairs that are evicted before their
//! next request." — this module implements that idea as a transparent
//! wrapper around any [`EvictionPolicy`], so the ablation benches can
//! measure it over CAMP, LRU and GDS alike.

use std::collections::{HashMap, VecDeque};

use crate::policy::{
    AccessOutcome, CacheKey, CacheRequest, EvictionPolicy, PolicyEvent, SharedTraceSink,
};

/// The admission decision rules available to [`Admission`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionRule {
    /// Admit everything (the identity wrapper, useful as a control).
    Always,
    /// Admit only pairs strictly smaller than this many bytes.
    SizeBelow(u64),
    /// Admit only pairs whose cost-to-size ratio `cost/size` is at least
    /// `num/den` (evaluated exactly in integers).
    RatioAtLeast {
        /// Numerator of the minimum admissible ratio.
        num: u64,
        /// Denominator of the minimum admissible ratio (must be non-zero).
        den: u64,
    },
    /// Admit a pair only on its second miss within the last `window`
    /// distinct missed keys (a ghost-based "prove yourself" filter that
    /// screens out one-hit wonders).
    SecondMiss {
        /// How many recently missed keys to remember.
        window: usize,
    },
}

/// Wraps an [`EvictionPolicy`] with an admission filter: hits pass through
/// untouched, misses are only inserted when the rule approves.
///
/// # Examples
///
/// ```
/// use camp_policies::{Admission, AdmissionRule, CacheRequest, EvictionPolicy, Lru};
///
/// // Only admit keys on their second miss: a scan of one-timers leaves the
/// // cache untouched.
/// let mut cache = Admission::new(Lru::new(100), AdmissionRule::SecondMiss { window: 64 });
/// let mut evicted = Vec::new();
/// for k in 0..10 {
///     cache.reference(CacheRequest::new(k, 10, 0), &mut evicted);
/// }
/// assert!(cache.is_empty());
/// // A repeated key gets in.
/// cache.reference(CacheRequest::new(3, 10, 0), &mut evicted);
/// assert!(cache.contains(&3));
/// ```
#[derive(Debug)]
pub struct Admission<P, K = u64> {
    inner: P,
    rule: AdmissionRule,
    ghost: HashMap<K, u64>,
    ghost_order: VecDeque<K>,
    bypassed: u64,
}

impl<K: CacheKey, P: EvictionPolicy<K>> Admission<P, K> {
    /// Wraps `inner` with `rule`.
    ///
    /// # Panics
    ///
    /// Panics if the rule is `RatioAtLeast` with a zero denominator.
    #[must_use]
    pub fn new(inner: P, rule: AdmissionRule) -> Self {
        if let AdmissionRule::RatioAtLeast { den, .. } = rule {
            assert!(den > 0, "ratio denominator must be non-zero");
        }
        Admission {
            inner,
            rule,
            ghost: HashMap::new(),
            ghost_order: VecDeque::new(),
            bypassed: 0,
        }
    }

    /// The wrapped policy.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped policy.
    #[must_use]
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Misses the rule declined to insert so far.
    #[must_use]
    pub fn bypassed(&self) -> u64 {
        self.bypassed
    }

    fn admit(&mut self, req: &CacheRequest<K>) -> bool {
        match self.rule {
            AdmissionRule::Always => true,
            AdmissionRule::SizeBelow(limit) => req.size < limit,
            AdmissionRule::RatioAtLeast { num, den } => {
                // cost/size >= num/den  <=>  cost*den >= num*size
                u128::from(req.cost) * u128::from(den) >= u128::from(num) * u128::from(req.size)
            }
            AdmissionRule::SecondMiss { window } => {
                let count = self.ghost.entry(req.key.clone()).or_insert(0);
                if *count > 0 {
                    self.ghost.remove(&req.key);
                    return true;
                }
                *count = 1;
                self.ghost_order.push_back(req.key.clone());
                while self.ghost.len() > window {
                    if let Some(old) = self.ghost_order.pop_front() {
                        self.ghost.remove(&old);
                    } else {
                        break;
                    }
                }
                false
            }
        }
    }
}

impl<K: CacheKey, P: EvictionPolicy<K>> EvictionPolicy<K> for Admission<P, K> {
    fn name(&self) -> String {
        format!("{}+admission", self.inner.name())
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.inner.contains(key)
    }

    fn reference(&mut self, req: CacheRequest<K>, evicted: &mut Vec<K>) -> AccessOutcome {
        if self.inner.contains(&req.key) {
            return self.inner.reference(req, evicted);
        }
        if self.admit(&req) {
            self.inner.reference(req, evicted)
        } else {
            self.bypassed += 1;
            AccessOutcome::MissBypassed
        }
    }

    fn touch(&mut self, key: &K) -> bool {
        self.inner.touch(key)
    }

    fn victim(&self) -> Option<K> {
        self.inner.victim()
    }

    fn remove(&mut self, key: &K) -> bool {
        self.inner.remove(key)
    }

    fn queue_count(&self) -> Option<usize> {
        self.inner.queue_count()
    }

    fn heap_node_visits(&self) -> Option<u64> {
        self.inner.heap_node_visits()
    }

    fn heap_update_ops(&self) -> Option<u64> {
        self.inner.heap_update_ops()
    }

    fn reset_instrumentation(&mut self) {
        self.inner.reset_instrumentation();
    }

    fn set_trace_sink(&mut self, sink: Option<SharedTraceSink>) {
        self.inner.set_trace_sink(sink);
    }

    fn trace_sink(&self) -> Option<&SharedTraceSink> {
        self.inner.trace_sink()
    }

    fn eviction_event(&self, key: &K) -> Option<PolicyEvent> {
        self.inner.eviction_event(key)
    }

    fn policy_stats(&self) -> crate::policy::PolicyStats {
        let mut stats = self.inner.policy_stats();
        stats.push("admission_bypassed", self.bypassed);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;

    fn req(key: u64, size: u64, cost: u64) -> CacheRequest {
        CacheRequest::new(key, size, cost)
    }

    #[test]
    fn always_is_transparent() {
        let mut a = Admission::new(Lru::new(30), AdmissionRule::Always);
        let mut ev = Vec::new();
        assert_eq!(
            a.reference(req(1, 10, 0), &mut ev),
            AccessOutcome::MissInserted
        );
        assert_eq!(a.reference(req(1, 10, 0), &mut ev), AccessOutcome::Hit);
        assert_eq!(a.bypassed(), 0);
    }

    #[test]
    fn size_filter_blocks_large_values() {
        let mut a = Admission::new(Lru::new(100), AdmissionRule::SizeBelow(20));
        let mut ev = Vec::new();
        assert_eq!(
            a.reference(req(1, 25, 0), &mut ev),
            AccessOutcome::MissBypassed
        );
        assert_eq!(
            a.reference(req(2, 10, 0), &mut ev),
            AccessOutcome::MissInserted
        );
        assert_eq!(a.bypassed(), 1);
        assert!(!a.contains(&1));
    }

    #[test]
    fn ratio_filter_requires_value_density() {
        let mut a = Admission::new(
            Lru::new(100),
            AdmissionRule::RatioAtLeast { num: 1, den: 2 },
        );
        let mut ev = Vec::new();
        // cost 4 / size 10 < 1/2: rejected.
        assert_eq!(
            a.reference(req(1, 10, 4), &mut ev),
            AccessOutcome::MissBypassed
        );
        // cost 5 / size 10 == 1/2: admitted.
        assert_eq!(
            a.reference(req(2, 10, 5), &mut ev),
            AccessOutcome::MissInserted
        );
    }

    #[test]
    fn second_miss_admits_repeaters_only() {
        let mut a = Admission::new(Lru::new(100), AdmissionRule::SecondMiss { window: 8 });
        let mut ev = Vec::new();
        assert_eq!(
            a.reference(req(1, 10, 0), &mut ev),
            AccessOutcome::MissBypassed
        );
        assert_eq!(
            a.reference(req(1, 10, 0), &mut ev),
            AccessOutcome::MissInserted
        );
        assert_eq!(a.reference(req(1, 10, 0), &mut ev), AccessOutcome::Hit);
    }

    #[test]
    fn second_miss_window_expires() {
        let mut a = Admission::new(Lru::new(1000), AdmissionRule::SecondMiss { window: 4 });
        let mut ev = Vec::new();
        a.reference(req(1, 10, 0), &mut ev);
        // Push key 1 out of the 4-entry window.
        for k in 2..=6 {
            a.reference(req(k, 10, 0), &mut ev);
        }
        // Key 1's first miss has been forgotten.
        assert_eq!(
            a.reference(req(1, 10, 0), &mut ev),
            AccessOutcome::MissBypassed
        );
    }

    #[test]
    fn hits_bypass_the_filter() {
        // Once resident, a key stays manageable even if the rule would now
        // reject it.
        let mut a = Admission::new(Lru::new(100), AdmissionRule::SizeBelow(20));
        let mut ev = Vec::new();
        a.reference(req(1, 10, 0), &mut ev);
        assert_eq!(a.reference(req(1, 10, 0), &mut ev), AccessOutcome::Hit);
    }
}
