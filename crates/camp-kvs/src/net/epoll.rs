//! A minimal, dependency-free `epoll(7)` wrapper: the readiness engine
//! under the reactor.
//!
//! The repo builds offline with no external crates (no `libc`, no `mio`),
//! so this module declares the four kernel entry points it needs —
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`, `close` — directly against
//! the C runtime that `std` already links, exactly the way
//! [`crate::signals`] declares its self-pipe syscalls. Everything above
//! this file (the reactor, the connection state machine, the timer wheel)
//! is safe code: worker wake-ups ride on `std`'s `UnixStream` pairs, and
//! sockets are switched to nonblocking mode with std's `set_nonblocking`.
//!
//! This is one of exactly two modules in the workspace allowed to use
//! `unsafe` (the other is `signals.rs`); camp-lint's
//! `unsafe-outside-signals` rule enforces the allowlist path-exactly.
//!
//! The wrapper is deliberately thin: an [`Epoll`] owns the epoll file
//! descriptor, `add`/`modify`/`delete` manage interest, and [`Epoll::wait`]
//! fills a caller-owned event slice. Level-triggered semantics only — the
//! reactor drains sockets to `EAGAIN` on every readiness event, so
//! edge-triggered mode would buy nothing and cost correctness headroom.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// `EPOLL_CLOEXEC` for [`epoll_create1`].
const EPOLL_CLOEXEC: i32 = 0o200_0000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Readable interest/readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable interest/readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel declares it
/// packed (a 12-byte struct with an unaligned `u64`); on other
/// architectures it uses natural alignment — the `cfg_attr` mirrors the
/// kernel's `EPOLL_PACKED` attribute exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN | ...`).
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    /// The readiness bits (copied out of the possibly-packed field).
    #[must_use]
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The registration token (copied out of the possibly-packed field).
    #[must_use]
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// An owned epoll instance.
///
/// # Examples
///
/// ```no_run
/// use camp_kvs::net::epoll::{Epoll, EpollEvent, EPOLLIN};
/// use std::os::fd::AsRawFd;
///
/// let epoll = Epoll::new()?;
/// let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
/// epoll.add(listener.as_raw_fd(), EPOLLIN, 7)?;
/// let mut events = [EpollEvent::default(); 64];
/// let n = epoll.wait(&mut events, 100)?; // 100 ms timeout
/// for event in &events[..n] {
///     assert_eq!(event.token(), 7);
/// }
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Returns the `epoll_create1` error (fd exhaustion, kernel limits).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes a flags word and returns an fd or -1;
        // no pointers cross the boundary.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        let ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event
        };
        // SAFETY: `event` outlives the call (the kernel copies it before
        // returning); DEL passes a null pointer, which the kernel accepts.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, ptr) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest bits and token.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error (e.g. the fd is already registered).
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes a registered fd's interest bits (and token).
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error (e.g. the fd is not registered).
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`. Closing an fd removes it implicitly; an explicit
    /// delete is only needed when the fd outlives its registration.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for up to `timeout_ms` milliseconds (−1 = forever) and fills
    /// `events` with ready registrations; returns how many. A signal
    /// interruption (`EINTR`) reports zero events instead of an error, so
    /// callers re-derive their timeout and re-enter — the reactor loop does
    /// exactly that.
    ///
    /// # Errors
    ///
    /// Returns any `epoll_wait` error other than `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let capacity = i32::try_from(events.len()).unwrap_or(i32::MAX).max(1);
        // SAFETY: `events` is a valid, writable slice of at least
        // `capacity` entries for the duration of the call.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), capacity, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(usize::try_from(n).unwrap_or(0))
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is the epoll fd this struct owns; double-close is
        // impossible because Drop runs once.
        unsafe {
            let _ = close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readable_after_a_write() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        epoll.add(b.as_raw_fd(), EPOLLIN, 42).expect("add");
        let mut events = [EpollEvent::default(); 8];

        // Nothing written yet: a zero-timeout wait reports nothing.
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);

        (&a).write_all(b"x").expect("write");
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);
    }

    #[test]
    fn modify_and_delete_change_interest() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        epoll.add(b.as_raw_fd(), EPOLLIN, 1).expect("add");
        (&a).write_all(b"x").expect("write");

        // Re-token and confirm the new token comes back.
        epoll.modify(b.as_raw_fd(), EPOLLIN, 2).expect("modify");
        let mut events = [EpollEvent::default(); 8];
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 2);

        // After delete the readable socket no longer reports.
        epoll.delete(b.as_raw_fd()).expect("delete");
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);
    }

    #[test]
    fn double_add_is_an_error() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (_a, b) = UnixStream::pair().expect("socketpair");
        epoll.add(b.as_raw_fd(), EPOLLIN, 1).expect("add");
        assert!(epoll.add(b.as_raw_fd(), EPOLLIN, 1).is_err());
    }
}
