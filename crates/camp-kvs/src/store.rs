//! The cache store: slab-backed item storage with pluggable eviction.
//!
//! This is the heart of the Twemcache-like server of the paper's §4: a hash
//! index over items stored in slab chunks, with eviction decided by any
//! [`EvictionPolicy`] from the shared policy layer — stock Twemcache LRU,
//! the paper's CAMP, or any of the surveyed baselines (GDS, GDSF, LRU-K,
//! 2Q, ARC, GD-Wheel, pooled LRU), selected by [`EvictionMode`]. Unlike
//! the simulator — where capacity is a logical byte budget — eviction here
//! is driven by *slab memory exhaustion*, faithfully reproducing the
//! allocation protocol of §5:
//!
//! 1. reuse a free chunk of the item's slab class;
//! 2. assign a fresh slab to the class while the budget lasts;
//! 3. evict items chosen by the replacement policy, reclaiming any slab
//!    that empties for the needed class;
//! 4. if the memory is calcified (evictions never free the right class),
//!    force a *random slab eviction* and reassign the slab.
//!
//! The policy tracks logical item bytes against the physical slab budget.
//! Because chunk rounding makes physical usage exceed logical usage, slab
//! exhaustion fires first and the policy acts as a pure victim selector,
//! exactly as in the paper's IQ Twemcache modification.

use std::collections::HashMap;

pub use camp_policies::EvictionMode;
use camp_policies::{
    AccessOutcome, CacheRequest, EvictionPolicy, PolicyStats, ShadowProfiler, SharedTraceSink,
};

use crate::item::Item;
use crate::slab::{ChunkRef, SlabAllocator, SlabConfig, SlabError};

/// Store configuration.
///
/// Not `Copy`: [`EvictionMode`] can carry non-`Copy` parameters (pooled-LRU
/// boundaries). Clone it where a copy used to be taken.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// Slab geometry and memory budget.
    pub slab: SlabConfig,
    /// Replacement policy.
    pub eviction: EvictionMode,
}

impl StoreConfig {
    /// A store with the given memory and policy.
    #[must_use]
    pub fn with_memory(bytes: u64, eviction: EvictionMode) -> Self {
        StoreConfig {
            slab: SlabConfig::with_memory(bytes),
            eviction,
        }
    }

    /// A CAMP store with the paper's default precision and the given memory.
    #[must_use]
    pub fn camp_with_memory(bytes: u64) -> Self {
        StoreConfig::with_memory(bytes, EvictionMode::default())
    }

    /// An LRU store with the given memory.
    #[must_use]
    pub fn lru_with_memory(bytes: u64) -> Self {
        StoreConfig::with_memory(bytes, EvictionMode::Lru)
    }
}

/// Cumulative store counters (`stats` command).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StoreStats {
    /// `get`/`iqget` requests that found a live item.
    pub get_hits: u64,
    /// `get`/`iqget` requests that missed.
    pub get_misses: u64,
    /// Successful `set`/`iqset` commands.
    pub sets: u64,
    /// Successful deletes.
    pub deletes: u64,
    /// Items evicted by the replacement policy (cause: capacity).
    pub evictions: u64,
    /// Items evicted as collateral of a forced random slab reassignment
    /// (cause: slab reassignment) — counted separately from `evictions` so
    /// the two causes sum, not overlap.
    pub slab_evictions: u64,
    /// Random slab evictions forced by calcification.
    pub slab_reassignments: u64,
    /// Slabs reclaimed for another class after emptying naturally.
    pub slab_reclaims: u64,
    /// Items dropped because they had expired.
    pub expired: u64,
}

/// Errors a store operation can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The encoded item exceeds the slab size: unstorable.
    ValueTooLarge {
        /// Encoded item size.
        requested: u32,
        /// Largest storable size.
        max: u32,
    },
    /// Eviction could not free a chunk (cache smaller than one item).
    OutOfMemory,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StoreError::ValueTooLarge { requested, max } => {
                write!(f, "item of {requested} bytes exceeds the slab size {max}")
            }
            StoreError::OutOfMemory => f.write_str("eviction could not free memory"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A successful `get`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct GetResult {
    /// The value bytes (copied out of the chunk).
    pub value: Vec<u8>,
    /// Client flags.
    pub flags: u32,
    /// The cost recorded at set time.
    pub cost: u64,
}

/// The slab-backed cache store.
///
/// # Examples
///
/// ```
/// use camp_kvs::store::{Store, StoreConfig};
///
/// let mut store = Store::new(StoreConfig::camp_with_memory(4 << 20));
/// store.set(b"user:1", b"alice", 0, 0, 1_000)?;
/// let hit = store.get(b"user:1").expect("resident");
/// assert_eq!(hit.value, b"alice");
/// assert_eq!(hit.cost, 1_000);
/// assert_eq!(store.policy_name(), "camp(p=5)");
/// # Ok::<(), camp_kvs::store::StoreError>(())
/// ```
pub struct Store {
    slabs: SlabAllocator,
    /// Chunk locations, keyed by the wire key. Residency here is the source
    /// of truth; the policy mirrors it for victim selection.
    index: HashMap<Box<[u8]>, ChunkRef>,
    policy: Box<dyn EvictionPolicy<Box<[u8]>> + Send>,
    mode: EvictionMode,
    stats: StoreStats,
    /// Reusable item-encoding scratch: the set path allocates nothing once
    /// this buffer's capacity covers the largest item seen.
    encode_buf: Vec<u8>,
    /// Reusable victim list handed to `EvictionPolicy::reference`.
    evicted_scratch: Vec<Box<[u8]>>,
    /// Online miss-ratio/cost-miss profiler: spatially sampled shadow
    /// caches at 0.5×/1×/2× capacity, fed from the get/set/delete paths.
    profiler: ShadowProfiler,
    /// The eviction-trace sink attached to the policy, kept so policy
    /// rebuilds (`flush_all`) can re-attach it.
    sink: Option<SharedTraceSink>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("policy", &self.policy.name())
            .field("mode", &self.mode)
            .field("len", &self.index.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Store {
    /// How many policy evictions to attempt before declaring the memory
    /// calcified and forcing a random slab eviction.
    const MAX_EVICTIONS_PER_ALLOC: usize = 1024;

    /// Creates a store.
    #[must_use]
    pub fn new(config: StoreConfig) -> Self {
        Store {
            slabs: SlabAllocator::new(config.slab),
            index: HashMap::new(),
            policy: config.eviction.build(policy_budget(&config.slab)),
            profiler: ShadowProfiler::new(&config.eviction, policy_budget(&config.slab)),
            mode: config.eviction,
            stats: StoreStats::default(),
            encode_buf: Vec::new(),
            evicted_scratch: Vec::new(),
            sink: None,
        }
    }

    /// Attaches (or detaches) the eviction-trace sink. The sink survives
    /// `flush_all`'s policy rebuild.
    pub fn set_trace_sink(&mut self, sink: Option<SharedTraceSink>) {
        self.policy.set_trace_sink(sink.clone());
        self.sink = sink;
    }

    /// The online shadow profiler (hit-ratio and cost-miss estimates at
    /// fractional capacities).
    #[must_use]
    pub fn profiler(&self) -> &ShadowProfiler {
        &self.profiler
    }

    /// The eviction policy in use.
    #[must_use]
    pub fn eviction_mode(&self) -> &EvictionMode {
        &self.mode
    }

    /// The active policy's self-reported name (e.g. `camp(p=5)`).
    #[must_use]
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Number of live items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Logical bytes resident, as accounted by the eviction policy.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.policy.used_bytes()
    }

    /// The active policy's internal gauges (CAMP: `L`, queue lengths, heap
    /// visits; others: whatever they can answer).
    #[must_use]
    pub fn policy_stats(&self) -> PolicyStats {
        self.policy.policy_stats()
    }

    /// Zeroes the cumulative counters and the policy's instrumentation
    /// (heap-visit counters). Cache contents are untouched — this
    /// re-baselines measurement, `flush_all` empties the cache.
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
        self.policy.reset_instrumentation();
        // Re-baseline the profiler's counters but keep its shadow caches
        // warm — estimates stay meaningful right after a reset.
        self.profiler.reset_counters();
    }

    /// Slab diagnostics: `(chunk_size, slabs, items)` per class.
    #[must_use]
    pub fn slab_census(&self) -> Vec<(u32, usize, u64)> {
        self.slabs.class_census()
    }

    /// The slab geometry this store was built with.
    #[must_use]
    pub fn slab_config(&self) -> &SlabConfig {
        self.slabs.config()
    }

    /// Looks up `key`, updating recency. Expired items are dropped.
    pub fn get(&mut self, key: &[u8]) -> Option<GetResult> {
        self.get_at(key, unix_now())
    }

    /// Like [`Store::get`] with an explicit clock (for tests and replay).
    pub fn get_at(&mut self, key: &[u8], now: u64) -> Option<GetResult> {
        self.get_with_at(key, now, |item| GetResult {
            value: item.value.to_vec(),
            flags: item.flags,
            cost: item.cost,
        })
    }

    /// Copy-free lookup: on a live hit, applies `f` to the [`Item`] while
    /// it still resides in its slab chunk and returns the result. Recency
    /// is updated and expired items are dropped, exactly like
    /// [`Store::get`], but no bytes are copied out of the arena — the
    /// server's get path serializes the wire response from inside the
    /// visitor. This path is allocation-free: the policy is touched with
    /// the index's own key box, not a fresh one.
    pub fn get_with<R>(&mut self, key: &[u8], f: impl FnOnce(&Item<'_>) -> R) -> Option<R> {
        self.get_with_at(key, unix_now(), f)
    }

    /// Like [`Store::get_with`] with an explicit clock.
    pub fn get_with_at<R>(
        &mut self,
        key: &[u8],
        now: u64,
        f: impl FnOnce(&Item<'_>) -> R,
    ) -> Option<R> {
        let Some((stored_key, &chunk)) = self.index.get_key_value(key) else {
            self.stats.get_misses += 1;
            // The miss cost is unknown until the pair is set; charging zero
            // undercounts est_miss_cost equally at every scale, so the
            // cross-scale deltas the profiler exists for are unaffected.
            self.profiler.record_get(key, 0, 0);
            return None;
        };
        let item = Item::decode(self.slabs.read(chunk));
        if item.expires_at == 0 || item.expires_at > now {
            self.policy.touch(stored_key);
            self.stats.get_hits += 1;
            self.profiler.record_get(
                key,
                Item::encoded_len(key.len(), item.value.len()) as u64,
                item.cost,
            );
            return Some(f(&item));
        }
        // Expired: drop it lazily.
        self.remove_entry(key);
        self.slabs.free(chunk);
        self.stats.expired += 1;
        self.stats.get_misses += 1;
        self.profiler.record_get(key, 0, 0);
        self.profiler.record_delete(key);
        None
    }

    /// Whether `key` is resident (no recency update, no expiry check).
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    /// Visits every resident item in place (no recency update, no expiry
    /// filtering, no stats). The persistence layer's compaction snapshot
    /// walks the store through this; iteration order is the index's.
    pub fn for_each_item(&self, mut f: impl FnMut(&Item<'_>)) {
        for &chunk in self.index.values() {
            f(&Item::decode(self.slabs.read(chunk)));
        }
    }

    /// A resident key's `(flags, expires_at, cost)` without touching
    /// recency, stats or the profiler. The persistence layer uses this to
    /// carry an item's metadata through `incr`/`decr` rewrites.
    #[must_use]
    pub fn peek_meta(&self, key: &[u8]) -> Option<(u32, u64, u64)> {
        let &chunk = self.index.get(key)?;
        let item = Item::decode(self.slabs.read(chunk));
        Some((item.flags, item.expires_at, item.cost))
    }

    /// Stores a key-value pair with the given flags, absolute expiry (unix
    /// seconds, 0 = never) and cost.
    ///
    /// # Errors
    ///
    /// [`StoreError::ValueTooLarge`] if the encoded item exceeds a slab;
    /// [`StoreError::OutOfMemory`] if eviction cannot free a chunk.
    pub fn set(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        expires_at: u64,
        cost: u64,
    ) -> Result<(), StoreError> {
        let total = Item::encoded_len(key.len(), value.len());
        let total = u32::try_from(total).map_err(|_| StoreError::ValueTooLarge {
            requested: u32::MAX,
            max: self.slabs.config().slab_size,
        })?;
        let class = match self.slabs.class_for(total) {
            Ok(class) => class,
            Err(SlabError::ItemTooLarge { requested, max }) => {
                return Err(StoreError::ValueTooLarge { requested, max })
            }
            Err(SlabError::NoMemory { .. }) => unreachable!("class_for never reports memory"),
        };
        // Replace semantics: drop the old item first, keeping its key box
        // so a replace reuses it instead of allocating a fresh one.
        let recycled_key = match self.remove_entry(key) {
            Some((old_key, old_chunk)) => {
                self.free_chunk(old_chunk, class);
                Some(old_key)
            }
            None => None,
        };
        let chunk = self.allocate_with_eviction(total, class)?;
        let item = Item {
            key,
            value,
            flags,
            cost,
            expires_at,
        };
        item.encode_to(&mut self.encode_buf);
        self.slabs.write(chunk, &self.encode_buf);
        // Register with the policy; the key box is *moved* into the request
        // (recycled from a replaced entry when possible). The policy may
        // evict on its own logical budget (rare — slab exhaustion normally
        // fires first, above).
        let policy_key: Box<[u8]> = recycled_key.unwrap_or_else(|| Box::from(key));
        let mut evicted = std::mem::take(&mut self.evicted_scratch);
        evicted.clear();
        let outcome = self.policy.reference(
            CacheRequest::new(policy_key, u64::from(total), cost),
            &mut evicted,
        );
        for victim in evicted.drain(..) {
            if let Some(victim_chunk) = self.index.remove(&victim) {
                self.free_chunk(victim_chunk, class);
                self.stats.evictions += 1;
            }
        }
        self.evicted_scratch = evicted;
        if outcome == AccessOutcome::MissBypassed {
            // The policy refused the item (can only happen when the whole
            // budget is smaller than one item): undo the allocation.
            self.slabs.free(chunk);
            return Err(StoreError::OutOfMemory);
        }
        self.index.insert(Box::from(key), chunk);
        self.stats.sets += 1;
        self.profiler.record_set(key, u64::from(total), cost);
        Ok(())
    }

    /// Stores the pair only if `key` is absent (memcached `add`). Returns
    /// whether it was stored.
    ///
    /// # Errors
    ///
    /// Same as [`Store::set`].
    pub fn add(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        expires_at: u64,
        cost: u64,
    ) -> Result<bool, StoreError> {
        if self.contains(key) {
            return Ok(false);
        }
        self.set(key, value, flags, expires_at, cost).map(|()| true)
    }

    /// Stores the pair only if `key` is already resident (memcached
    /// `replace`). Returns whether it was stored.
    ///
    /// # Errors
    ///
    /// Same as [`Store::set`].
    pub fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        expires_at: u64,
        cost: u64,
    ) -> Result<bool, StoreError> {
        if !self.contains(key) {
            return Ok(false);
        }
        self.set(key, value, flags, expires_at, cost).map(|()| true)
    }

    /// Atomically adds `delta` to a numeric ASCII value (memcached `incr`).
    /// Returns the new value, or `None` if the key is absent or the value
    /// is not an unsigned decimal number. Flags, expiry and cost are
    /// preserved.
    pub fn incr(&mut self, key: &[u8], delta: u64) -> Option<u64> {
        self.add_signed(key, delta, true)
    }

    /// Memcached `decr`: like [`Store::incr`] but subtracting, floored at
    /// zero (memcached semantics).
    pub fn decr(&mut self, key: &[u8], delta: u64) -> Option<u64> {
        self.add_signed(key, delta, false)
    }

    fn add_signed(&mut self, key: &[u8], delta: u64, up: bool) -> Option<u64> {
        let &chunk = self.index.get(key)?;
        let (current, flags, cost, expires_at) = {
            let item = Item::decode(self.slabs.read(chunk));
            let text = std::str::from_utf8(item.value).ok()?;
            let current: u64 = text.trim().parse().ok()?;
            (current, item.flags, item.cost, item.expires_at)
        };
        let next = if up {
            current.wrapping_add(delta)
        } else {
            current.saturating_sub(delta)
        };
        let rendered = next.to_string();
        self.set(key, rendered.as_bytes(), flags, expires_at, cost)
            .ok()?;
        Some(next)
    }

    /// Updates the expiry of a resident key in place (memcached `touch`).
    /// Returns whether the key was resident.
    pub fn touch(&mut self, key: &[u8], expires_at: u64) -> bool {
        let Some(&chunk) = self.index.get(key) else {
            return false;
        };
        // The expiry lives at a fixed header offset: after the key length
        // (u16), value length (u32), flags (u32) and cost (u64) fields.
        const EXPIRY_OFFSET: u32 = 2 + 4 + 4 + 8;
        self.slabs
            .write_at(chunk, EXPIRY_OFFSET, &expires_at.to_be_bytes());
        true
    }

    /// Drops every item (memcached `flush_all`).
    pub fn flush_all(&mut self) {
        for (_, chunk) in self.index.drain() {
            self.slabs.free(chunk);
        }
        // A fresh policy instance is cheaper and simpler than removing every
        // key from the old one. The trace sink survives the rebuild, and the
        // shadow caches restart cold to mirror the emptied store.
        self.policy = self.mode.build(policy_budget(self.slabs.config()));
        self.policy.set_trace_sink(self.sink.clone());
        self.profiler = ShadowProfiler::new(&self.mode, policy_budget(self.slabs.config()));
    }

    /// Deletes `key`. Returns whether it was resident.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        match self.remove_entry(key) {
            Some((_old_key, chunk)) => {
                let class = chunk.class();
                self.free_chunk(chunk, class);
                self.stats.deletes += 1;
                self.profiler.record_delete(key);
                true
            }
            None => false,
        }
    }

    /// Removes `key` from both the index and the policy, handing back the
    /// index's owned key box (callers reuse it to avoid re-allocating) and
    /// the chunk. The policy lookup uses that same box — nothing is
    /// allocated here.
    fn remove_entry(&mut self, key: &[u8]) -> Option<(Box<[u8]>, ChunkRef)> {
        let (stored_key, chunk) = self.index.remove_entry(key)?;
        // The policy may not know the key (e.g. replaced while the policy
        // had already evicted it on its own budget) — residency in the
        // index is what counts.
        self.policy.remove(&stored_key);
        Some((stored_key, chunk))
    }

    /// Frees a chunk; if its slab empties and a different class needs
    /// memory, the slab is reclaimed for `needed_class`.
    fn free_chunk(&mut self, chunk: ChunkRef, needed_class: u8) {
        let slab = chunk.slab();
        let old_class = chunk.class();
        self.slabs.free(chunk);
        if old_class != needed_class && self.slabs.slab_is_empty(slab) {
            self.slabs.complete_reassign(slab, needed_class);
            self.stats.slab_reclaims += 1;
        }
    }

    /// The §5 allocation protocol.
    fn allocate_with_eviction(&mut self, total: u32, class: u8) -> Result<ChunkRef, StoreError> {
        for _ in 0..Self::MAX_EVICTIONS_PER_ALLOC {
            match self.slabs.allocate(total) {
                Ok(chunk) => return Ok(chunk),
                Err(SlabError::ItemTooLarge { requested, max }) => {
                    return Err(StoreError::ValueTooLarge { requested, max })
                }
                Err(SlabError::NoMemory { .. }) => {
                    // A fully empty slab of another class is free memory:
                    // reassign it without evicting anything.
                    if let Some(slab) = self.slabs.find_empty_slab_not_of(class) {
                        self.slabs.complete_reassign(slab, class);
                        self.stats.slab_reclaims += 1;
                        continue;
                    }
                    // Step 4: evict by policy.
                    let Some(victim) = self.policy.victim() else {
                        // Nothing left to evict and no reusable slab: the
                        // item cannot fit.
                        return Err(StoreError::OutOfMemory);
                    };
                    // Report the eviction while the policy still holds the
                    // entry's metadata; remove_entry's own policy.remove then
                    // finds nothing and is a no-op.
                    self.policy.evict(&victim);
                    // lint:allow(unwrap-in-lib) — victim() only returns keys
                    // the policy owns, and policy and index move in lockstep.
                    let (_, chunk) = self.remove_entry(&victim).expect("victim is resident");
                    self.free_chunk(chunk, class);
                    self.stats.evictions += 1;
                }
            }
        }
        // Calcified: force a random slab eviction (Twemcache's mitigation).
        let Some((slab_index, victims)) = self.slabs.reassign_random_slab(class) else {
            return Err(StoreError::OutOfMemory);
        };
        for chunk in victims {
            let key: Box<[u8]> = Item::decode(self.slabs.read(chunk)).key.into();
            // lint:allow(unwrap-in-lib) — every chunk in a reassigned slab
            // was written through insert, which indexed it.
            self.remove_entry(&key).expect("slab item is indexed");
            self.slabs.free(chunk);
            self.stats.slab_evictions += 1;
        }
        self.slabs.complete_reassign(slab_index, class);
        self.stats.slab_reassignments += 1;
        self.slabs
            .allocate(total)
            .map_err(|_| StoreError::OutOfMemory)
    }
}

/// The logical byte budget handed to the policy: the full slab memory.
fn policy_budget(slab: &SlabConfig) -> u64 {
    u64::from(slab.slab_size) * u64::from(slab.max_slabs)
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_core::Precision;

    fn small_store(mode: EvictionMode) -> Store {
        Store::new(StoreConfig {
            slab: SlabConfig::small(4096, 4),
            eviction: mode,
        })
    }

    fn all_modes() -> Vec<EvictionMode> {
        EvictionMode::all_names()
            .into_iter()
            .map(|n| n.parse().unwrap())
            .collect()
    }

    #[test]
    fn set_get_delete_roundtrip_all_modes() {
        for mode in all_modes() {
            let mut store = small_store(mode.clone());
            store.set(b"alpha", b"1111", 3, 0, 50).unwrap();
            store.set(b"beta", b"2222", 0, 0, 60).unwrap();
            let got = store.get(b"alpha").unwrap();
            assert_eq!(got.value, b"1111", "{mode}");
            assert_eq!(got.flags, 3);
            assert_eq!(got.cost, 50);
            assert!(store.delete(b"alpha"));
            assert!(!store.delete(b"alpha"));
            assert!(store.get(b"alpha").is_none());
            assert_eq!(store.len(), 1);
            let stats = store.stats();
            assert_eq!(stats.sets, 2);
            assert_eq!(stats.get_hits, 1);
            assert_eq!(stats.get_misses, 1);
            assert_eq!(stats.deletes, 1);
            assert!(!store.policy_name().is_empty());
        }
    }

    #[test]
    fn replace_updates_value_in_place() {
        let mut store = small_store(EvictionMode::Camp(Precision::Bits(5)));
        store.set(b"k", b"old", 0, 0, 1).unwrap();
        store.set(b"k", b"new-and-longer", 0, 0, 2).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b"k").unwrap().value, b"new-and-longer");
    }

    #[test]
    fn eviction_kicks_in_when_slabs_fill() {
        let mut store = small_store(EvictionMode::Lru);
        // Value ~60 bytes -> with header+key roughly one 120-byte chunk.
        // 4 slabs x 4096 -> 4 * 34 chunks of 120 bytes.
        for i in 0..400u32 {
            let key = format!("key-{i:04}");
            store.set(key.as_bytes(), &[0u8; 60], 0, 0, 1).unwrap();
        }
        assert!(store.stats().evictions > 0);
        assert!(store.len() < 400);
        // The most recent key must still be there under LRU.
        assert!(store.contains(b"key-0399"));
    }

    #[test]
    fn every_mode_survives_slab_pressure() {
        for mode in all_modes() {
            let mut store = small_store(mode.clone());
            for i in 0..400u32 {
                let key = format!("key-{i:04}");
                let cost = 1 + u64::from(i % 7) * 100;
                store.set(key.as_bytes(), &[0u8; 60], 0, 0, cost).unwrap();
                // Index and policy must agree on the resident set size.
                assert_eq!(store.len(), store.index.len(), "{mode}");
            }
            assert!(store.stats().evictions > 0, "{mode}: no evictions");
            assert!(store.len() < 400, "{mode}");
        }
    }

    #[test]
    fn camp_store_protects_expensive_items() {
        let mut store = small_store(EvictionMode::Camp(Precision::Bits(5)));
        store
            .set(b"expensive", &[7u8; 60], 0, 0, 1_000_000)
            .unwrap();
        for i in 0..600u32 {
            let key = format!("cheap-{i:04}");
            store.set(key.as_bytes(), &[0u8; 60], 0, 0, 1).unwrap();
        }
        assert!(
            store.contains(b"expensive"),
            "CAMP must keep the expensive item under cheap churn"
        );
        let mut lru_store = small_store(EvictionMode::Lru);
        lru_store
            .set(b"expensive", &[7u8; 60], 0, 0, 1_000_000)
            .unwrap();
        for i in 0..600u32 {
            let key = format!("cheap-{i:04}");
            lru_store.set(key.as_bytes(), &[0u8; 60], 0, 0, 1).unwrap();
        }
        assert!(
            !lru_store.contains(b"expensive"),
            "LRU is cost-blind and must have evicted it"
        );
    }

    #[test]
    fn gds_store_also_protects_expensive_items() {
        let mut store = small_store(EvictionMode::Gds);
        store
            .set(b"expensive", &[7u8; 60], 0, 0, 1_000_000)
            .unwrap();
        for i in 0..600u32 {
            let key = format!("cheap-{i:04}");
            store.set(key.as_bytes(), &[0u8; 60], 0, 0, 1).unwrap();
        }
        assert!(
            store.contains(b"expensive"),
            "GDS must keep the expensive item under cheap churn"
        );
    }

    #[test]
    fn get_with_visits_the_resident_item() {
        let mut store = small_store(EvictionMode::Lru);
        store.set(b"k", b"value-bytes", 9, 0, 33).unwrap();
        let mut out = Vec::new();
        let seen = store.get_with(b"k", |item| {
            out.extend_from_slice(item.value);
            (item.flags, item.cost)
        });
        assert_eq!(seen, Some((9, 33)));
        assert_eq!(out, b"value-bytes");
        assert!(store.get_with(b"missing", |_| ()).is_none());
        let stats = store.stats();
        assert_eq!(stats.get_hits, 1);
        assert_eq!(stats.get_misses, 1);
    }

    #[test]
    fn get_with_updates_recency() {
        let mut store = small_store(EvictionMode::Lru);
        store.set(b"pinned", &[0u8; 60], 0, 0, 1).unwrap();
        for i in 0..300u32 {
            // Keep touching the pinned key through the visitor API while
            // churning enough cheap keys to force evictions.
            store.get_with(b"pinned", |_| ()).unwrap();
            let key = format!("churn-{i:04}");
            store.set(key.as_bytes(), &[0u8; 60], 0, 0, 1).unwrap();
        }
        assert!(store.stats().evictions > 0);
        assert!(store.contains(b"pinned"), "touched key must survive LRU");
    }

    #[test]
    fn get_with_drops_expired_items() {
        let mut store = small_store(EvictionMode::Lru);
        store.set(b"ttl", b"v", 0, 100, 1).unwrap();
        assert!(store.get_with_at(b"ttl", 100, |_| ()).is_none());
        assert_eq!(store.stats().expired, 1);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn expired_items_are_dropped_lazily() {
        let mut store = small_store(EvictionMode::Lru);
        store.set(b"ttl", b"v", 0, 100, 1).unwrap(); // expires at t=100
        assert!(store.get_at(b"ttl", 99).is_some());
        assert!(store.get_at(b"ttl", 100).is_none());
        assert_eq!(store.stats().expired, 1);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn oversized_item_is_rejected() {
        let mut store = small_store(EvictionMode::Lru);
        let err = store.set(b"big", &[0u8; 8192], 0, 0, 1).unwrap_err();
        assert!(matches!(err, StoreError::ValueTooLarge { .. }));
    }

    #[test]
    fn calcification_is_resolved_by_slab_reassignment() {
        let mut store = small_store(EvictionMode::Lru);
        // Fill every slab with small items.
        for i in 0..400u32 {
            let key = format!("small-{i:04}");
            store.set(key.as_bytes(), &[0u8; 60], 0, 0, 1).unwrap();
        }
        // Now store large items that need a different class. Policy
        // evictions (LRU order) free small-class chunks; only slab
        // reclaim/reassignment can serve the big class.
        for i in 0..8u32 {
            let key = format!("large-{i}");
            store.set(key.as_bytes(), &[1u8; 2000], 0, 0, 1).unwrap();
        }
        let stats = store.stats();
        assert!(
            stats.slab_reassignments + stats.slab_reclaims > 0,
            "expected a slab to change class: {stats:?}"
        );
        assert!(store.contains(b"large-7"));
    }

    #[test]
    fn add_and_replace_respect_presence() {
        let mut store = small_store(EvictionMode::Lru);
        assert!(store.add(b"k", b"v1", 0, 0, 1).unwrap());
        assert!(!store.add(b"k", b"v2", 0, 0, 1).unwrap(), "add on resident");
        assert_eq!(store.get(b"k").unwrap().value, b"v1");
        assert!(store.replace(b"k", b"v3", 0, 0, 1).unwrap());
        assert_eq!(store.get(b"k").unwrap().value, b"v3");
        assert!(!store.replace(b"absent", b"x", 0, 0, 1).unwrap());
        assert!(!store.contains(b"absent"));
    }

    #[test]
    fn incr_decr_numeric_semantics() {
        let mut store = small_store(EvictionMode::Lru);
        store.set(b"n", b"10", 7, 0, 42).unwrap();
        assert_eq!(store.incr(b"n", 5), Some(15));
        assert_eq!(store.decr(b"n", 20), Some(0), "decr floors at zero");
        assert_eq!(store.get(b"n").unwrap().value, b"0");
        // Flags and cost are preserved across the rewrite.
        let hit = store.get(b"n").unwrap();
        assert_eq!((hit.flags, hit.cost), (7, 42));
        // Non-numeric and absent keys fail.
        store.set(b"s", b"hello", 0, 0, 1).unwrap();
        assert_eq!(store.incr(b"s", 1), None);
        assert_eq!(store.incr(b"missing", 1), None);
    }

    #[test]
    fn touch_updates_expiry_in_place() {
        let mut store = small_store(EvictionMode::Lru);
        store.set(b"t", b"v", 0, 100, 1).unwrap();
        assert!(store.touch(b"t", 500));
        assert!(
            store.get_at(b"t", 300).is_some(),
            "touched key must live on"
        );
        assert!(store.get_at(b"t", 500).is_none());
        assert!(!store.touch(b"missing", 1));
    }

    #[test]
    fn flush_all_empties_the_store() {
        for mode in all_modes() {
            let mut store = small_store(mode.clone());
            for i in 0..20u32 {
                store
                    .set(format!("k{i}").as_bytes(), b"v", 0, 0, 1)
                    .unwrap();
            }
            store.flush_all();
            assert!(store.is_empty(), "{mode}");
            // Memory is reusable afterwards.
            store.set(b"fresh", b"v", 0, 0, 1).unwrap();
            assert!(store.contains(b"fresh"));
        }
    }

    #[derive(Debug, Default)]
    struct CountingSink {
        admits: std::sync::atomic::AtomicU64,
        evicts: std::sync::atomic::AtomicU64,
    }

    impl camp_policies::TraceSink for CountingSink {
        fn record(&self, event: &camp_policies::PolicyEvent) {
            use std::sync::atomic::Ordering;
            match event.kind {
                camp_policies::PolicyEventKind::Admit => {
                    self.admits.fetch_add(1, Ordering::Relaxed)
                }
                camp_policies::PolicyEventKind::Evict => {
                    self.evicts.fetch_add(1, Ordering::Relaxed)
                }
            };
        }
    }

    #[test]
    fn trace_sink_sees_pressure_evictions_and_survives_flush() {
        use std::sync::atomic::Ordering;
        let sink = std::sync::Arc::new(CountingSink::default());
        let mut store = small_store(EvictionMode::Camp(Precision::Bits(5)));
        store.set_trace_sink(Some(sink.clone()));
        for i in 0..400u32 {
            let key = format!("key-{i:04}");
            store.set(key.as_bytes(), &[0u8; 60], 0, 0, 1).unwrap();
        }
        assert!(store.stats().evictions > 0);
        assert!(sink.admits.load(Ordering::Relaxed) >= 400);
        assert!(
            sink.evicts.load(Ordering::Relaxed) >= store.stats().evictions,
            "every capacity eviction must be traced"
        );
        // The sink survives flush_all's policy rebuild.
        store.flush_all();
        let admits_before = sink.admits.load(Ordering::Relaxed);
        store.set(b"fresh", b"v", 0, 0, 1).unwrap();
        assert!(sink.admits.load(Ordering::Relaxed) > admits_before);
    }

    #[test]
    fn explicit_deletes_emit_no_eviction_trace() {
        use std::sync::atomic::Ordering;
        let sink = std::sync::Arc::new(CountingSink::default());
        let mut store = small_store(EvictionMode::Lru);
        store.set_trace_sink(Some(sink.clone()));
        store.set(b"k", b"v", 0, 0, 1).unwrap();
        assert!(store.delete(b"k"));
        assert_eq!(sink.evicts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shadow_profiler_tracks_traffic() {
        let mut store = small_store(EvictionMode::Camp(Precision::Bits(5)));
        for i in 0..1000u32 {
            let key = format!("key-{i:04}");
            store.set(key.as_bytes(), &[0u8; 60], 0, 0, 1).unwrap();
            store.get(key.as_bytes());
        }
        let estimates = store.profiler().estimates();
        assert_eq!(estimates.len(), 3, "0.5x/1x/2x scales");
        let sampled: u64 = estimates.iter().map(|e| e.sampled_gets).sum();
        assert!(sampled > 0, "1000 keys must land some 1-in-64 samples");
        // reset_stats keeps shadows but re-baselines counters.
        store.reset_stats();
        assert_eq!(store.profiler().estimates()[0].sampled_gets, 0);
        // flush_all restarts the shadows cold.
        store.flush_all();
        assert_eq!(store.profiler().estimates().len(), 3);
    }

    #[test]
    fn stats_census_reports_classes() {
        let mut store = small_store(EvictionMode::Lru);
        store.set(b"small", &[0u8; 30], 0, 0, 1).unwrap();
        store.set(b"large", &[0u8; 1500], 0, 0, 1).unwrap();
        let census = store.slab_census();
        let live: u64 = census.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(live, 2);
    }
}
