//! End-to-end tests of the `repro` binary (cheap experiments only).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn table1_prints_the_paper_rows() {
    let output = repro().arg("table1").output().expect("run repro table1");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("CAMP's rounding"), "{stdout}");
    assert!(stdout.contains("101100000"), "{stdout}");
    assert!(stdout.contains("000000111"), "{stdout}");
}

#[test]
fn csv_export_writes_files() {
    let dir = std::env::temp_dir().join("camp-repro-cli");
    std::fs::remove_dir_all(&dir).ok();
    let output = repro()
        .args(["table1", "--out", dir.to_str().unwrap()])
        .output()
        .expect("run repro table1 --out");
    assert!(output.status.success());
    let csv = std::fs::read_to_string(dir.join("table1.csv")).expect("csv written");
    assert!(csv.starts_with("x (binary)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn custom_experiment_runs_on_a_generated_trace() {
    let dir = std::env::temp_dir().join("camp-repro-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mini.trace");
    // A small trace written through the library (the CLI route is covered
    // in camp-workload's tracegen tests).
    camp_workload::BgConfig::paper_scaled(100, 2_000, 3)
        .generate()
        .save(&path)
        .unwrap();
    let output = repro()
        .args(["custom", "--trace", path.to_str().unwrap(), "--plot"])
        .output()
        .expect("run repro custom");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("custom-cost-miss"), "{stdout}");
    assert!(stdout.contains("camp(p=5)"), "{stdout}");
    // --plot rendered a chart with a legend.
    assert!(stdout.contains("* camp(p=5)"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_experiment_is_a_clean_error() {
    let output = repro().arg("figZZ").output().expect("run repro");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown experiment"), "{stderr}");
    assert!(stderr.contains("fig5c"), "{stderr}");
}

#[test]
fn list_shows_every_experiment() {
    let output = repro().arg("--list").output().expect("run repro --list");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for id in ["table1", "fig4", "fig9", "ablation-tiebreak", "custom"] {
        assert!(stdout.contains(id), "missing {id}: {stdout}");
    }
}

#[test]
fn custom_without_trace_is_rejected() {
    let output = repro().arg("custom").output().expect("run repro custom");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--trace"));
}
