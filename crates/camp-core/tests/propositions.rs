//! The paper's three propositions, as executable checks.
//!
//! * **Proposition 1** — `L` is non-decreasing, and `L ≤ H(p) ≤ L + ratio(p)`
//!   for every resident pair.
//! * **Proposition 2** — the number of distinct rounded ratios (and hence
//!   queues) is at most `(⌈log2(U+1)⌉ − p + 1)·2^p`.
//! * **Proposition 3** — rounding loses at most a `(1 + ε)` factor with
//!   `ε = 2^(−p+1)`; equivalently, CAMP at precision `p` on a trace makes
//!   *exactly* the decisions of unrounded CAMP on the pre-rounded trace.

use camp_core::rng::Rng64;
use camp_core::rounding::round_to_significant_bits;
use camp_core::{Camp, Precision};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

// ----------------------------------------------------------- Proposition 1

/// L never decreases and every resident priority stays in
/// [L_at_reference, L_at_reference + ratio] — checked via the public
/// metadata after every operation. Seeded random exploration over a grid of
/// (seed, capacity, precision) configurations.
#[test]
fn proposition_1_l_monotone_and_h_bounded() {
    for seed in 1u64..=24 {
        let mut cfg = Rng64::seed_from_u64(seed);
        let capacity = cfg.range_u64(100, 1000);
        let p = cfg.range_u64(1, 11) as u8;
        let mut state = seed;
        let mut cache: Camp<u64, ()> = Camp::new(capacity, Precision::Bits(p));
        let mut last_l = 0u128;
        let mut h_at_insert: std::collections::HashMap<u64, (u128, u64)> = Default::default();
        for _ in 0..2_000 {
            let key = xorshift(&mut state) % 64;
            let l_before = cache.l_value();
            if cache.get(&key).is_none() {
                let size = 1 + xorshift(&mut state) % 50;
                let cost = xorshift(&mut state) % 10_000;
                let mut evicted = Vec::new();
                cache.insert_with_evictions(key, (), size, cost, &mut evicted);
                for (k, ()) in &evicted {
                    h_at_insert.remove(k);
                }
            }
            if let Some(meta) = cache.entry_meta(&key) {
                // H was assigned as L' + ratio for some L' <= current L at
                // that moment and the current L can only have grown since:
                // L_now >= L' and H = L' + ratio, so H <= L_now + ratio and
                // H + 0 >= L' — verify H - ratio (the L' used) <= L_now.
                let l_used = meta.h - u128::from(meta.rounded_ratio);
                assert!(l_used <= cache.l_value().max(l_before));
                assert!(meta.h >= cache.l_value() || meta.h >= l_used);
                h_at_insert.insert(key, (meta.h, meta.rounded_ratio));
            }
            let l = cache.l_value();
            assert!(l >= last_l, "L decreased: {l} < {last_l}");
            last_l = l;
            // Claim 2 for every resident: L <= H(p) is what makes queue
            // heads valid eviction candidates. (H may lag L by at most the
            // time since its last reference; the *strict* claim L <= H
            // holds in GDS where L is min-H. With CAMP's lazy L it holds
            // for at least the global minimum.)
            let census = cache.queue_census();
            if let Some(min_head) = census.iter().map(|q| q.head_h).min() {
                assert!(min_head >= l, "heap min {min_head} below L {l}");
            }
        }
    }
}

// ----------------------------------------------------------- Proposition 2

/// The queue count never exceeds the Proposition 2 bound for the largest
/// integerized ratio actually produced, across seeds and precisions.
#[test]
fn proposition_2_queue_count_bounded() {
    for seed in 1u64..=16 {
        let p = 1 + (seed % 8) as u8;
        let mut state = seed;
        let precision = Precision::Bits(p);
        // Fixed multiplier: makes the integerized ratios known exactly.
        let mut cache: Camp<u64, ()> = Camp::<u64, ()>::builder(u64::MAX)
            .precision(precision)
            .fixed_multiplier(1000)
            .build();
        let mut max_ratio = 1u64;
        for key in 0..3_000u64 {
            let size = 1 + xorshift(&mut state) % 100;
            let cost = xorshift(&mut state) % 100_000;
            cache.insert(key, (), size, cost);
            if let Some(meta) = cache.entry_meta(&key) {
                max_ratio = max_ratio.max(meta.rounded_ratio);
            }
        }
        let bound = precision
            .distinct_value_bound(max_ratio)
            .expect("finite precision has a bound");
        assert!(
            cache.queue_count() as u64 <= bound,
            "{} queues exceed the Proposition 2 bound {bound} (U = {max_ratio})",
            cache.queue_count()
        );
    }
}

// ----------------------------------------------------------- Proposition 3

/// The exact identity behind Proposition 3's proof: CAMP at precision `p`
/// on trace σ makes the same eviction decisions as unrounded CAMP on the
/// pre-rounded trace σ̄ ("CAMP makes the same decisions as GDS on σ̄
/// because the values are already rounded").
#[test]
fn proposition_3_camp_on_sigma_equals_unrounded_camp_on_rounded_sigma() {
    for p in [1u8, 3, 5, 8] {
        let mut state = 0xC0FFEEu64;
        // size = 1 and multiplier = 1 make integerized ratio == cost, so
        // pre-rounding σ is simply rounding each cost.
        let requests: Vec<(u64, u64)> = (0..20_000)
            .map(|_| {
                let key = xorshift(&mut state) % 300;
                let cost = 1 + (key.wrapping_mul(0x9E3779B9) % 50_000);
                (key, cost)
            })
            .collect();

        let capacity = 100; // 100 unit-size slots
        let mut rounded_trace: Camp<u64, ()> = Camp::<u64, ()>::builder(capacity)
            .precision(Precision::Infinite)
            .fixed_multiplier(1)
            .build();
        let mut rounding_camp: Camp<u64, ()> = Camp::<u64, ()>::builder(capacity)
            .precision(Precision::Bits(p))
            .fixed_multiplier(1)
            .build();

        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        for &(key, cost) in &requests {
            ev_a.clear();
            ev_b.clear();
            let hit_a = rounding_camp.get(&key).is_some();
            let hit_b = rounded_trace.get(&key).is_some();
            assert_eq!(hit_a, hit_b, "p={p}: hit/miss diverged on key {key}");
            if !hit_a {
                rounding_camp.insert_with_evictions(key, (), 1, cost, &mut ev_a);
                let rounded_cost = round_to_significant_bits(cost, u32::from(p));
                rounded_trace.insert_with_evictions(key, (), 1, rounded_cost, &mut ev_b);
                assert_eq!(
                    ev_a, ev_b,
                    "p={p}: eviction decisions diverged on key {key}"
                );
            }
        }
    }
}

/// Proposition 3's quantitative consequence, checked empirically: the cost
/// incurred at precision `p` stays within (1 + ε) of the unrounded cost,
/// with ε = 2^(-p+1), up to the workload noise the theory's worst case
/// absorbs. (The theorem bounds the *competitive ratio*, not per-instance, so
/// we allow a modest slack factor.)
#[test]
fn proposition_3_cost_within_epsilon_band() {
    let mut state = 0xBEEFu64;
    let requests: Vec<(u64, u64, u64)> = (0..60_000)
        .map(|_| {
            let key = xorshift(&mut state) % 400;
            let size = 1 + key % 40;
            let cost = [1u64, 100, 10_000][(key % 3) as usize];
            (key, size, cost)
        })
        .collect();
    let capacity = 2_000;

    let run = |precision: Precision| -> u64 {
        let mut cache: Camp<u64, ()> = Camp::new(capacity, precision);
        let mut seen = std::collections::HashSet::new();
        let mut missed = 0u64;
        for &(key, size, cost) in &requests {
            let hit = cache.get(&key).is_some();
            if !hit {
                cache.insert(key, (), size, cost);
            }
            if !seen.insert(key) && !hit {
                missed += cost;
            }
        }
        missed
    };

    let exact = run(Precision::Infinite);
    for p in [2u8, 3, 5, 8] {
        let rounded = run(Precision::Bits(p));
        let epsilon = Precision::Bits(p).epsilon();
        // Allow 4x the theoretical epsilon as instance noise headroom (the
        // competitive-ratio bound is against OPT, not pointwise).
        let band = 1.0 + 4.0 * epsilon + 0.05;
        let ratio = rounded as f64 / exact.max(1) as f64;
        assert!(
            ratio < band && ratio > 1.0 / band,
            "p={p}: cost ratio {ratio:.4} outside band {band:.4}"
        );
    }
}
