//! Eviction-decision tracing: the [`TraceSink`] a cache policy reports
//! admission and eviction decisions through.
//!
//! The sink is deliberately minimal — one callback, plain-data events, no
//! clocks — so policy crates stay deterministic and dependency-free while
//! the server layer adapts events into its flight recorder (ring buffers,
//! histograms, Prometheus series). A policy without a sink attached pays
//! one branch per decision.
//!
//! Events carry a *hash* of the key rather than the key itself: trace
//! consumers need identity (to correlate admissions with later evictions)
//! but must not exfiltrate cached payload keys into logs or metrics.

use std::hash::{Hash, Hasher};

/// Which decision a [`PolicyEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyEventKind {
    /// A pair was admitted into the cache.
    Admit,
    /// A pair was evicted to make room (not an explicit delete).
    Evict,
}

/// One eviction-policy decision, as reported to a [`TraceSink`].
///
/// Fields a policy does not model are zero: only CAMP-family policies
/// populate `ratio`, `queue` and `l_value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyEvent {
    /// Admission or eviction.
    pub kind: PolicyEventKind,
    /// Stable hash of the affected key (see [`key_hash`]).
    pub key_hash: u64,
    /// The pair's size in bytes.
    pub size: u64,
    /// The pair's miss cost.
    pub cost: u64,
    /// The rounded, integerized cost/size ratio (CAMP's queue label).
    pub ratio: u64,
    /// Index of the internal queue the decision touched.
    pub queue: u32,
    /// The policy's global `L` term at decision time, saturated to `u64`.
    pub l_value: u64,
}

impl PolicyEvent {
    /// An event with every policy-specific field zeroed — the starting
    /// point for policies without ratios, queues, or an `L` term.
    #[must_use]
    pub fn basic(kind: PolicyEventKind, key_hash: u64, size: u64, cost: u64) -> PolicyEvent {
        PolicyEvent {
            kind,
            key_hash,
            size,
            cost,
            ratio: 0,
            queue: 0,
            l_value: 0,
        }
    }
}

/// Receives policy decisions. Implementations must be cheap and wait-free:
/// sinks are invoked inline on the cache hot path, under whatever lock the
/// caller already holds. (`Debug` is required so policies holding a sink
/// can keep deriving their own `Debug`.)
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Records one decision.
    fn record(&self, event: &PolicyEvent);
}

/// The shareable sink handle policies store.
pub type SharedTraceSink = std::sync::Arc<dyn TraceSink>;

/// A stable, process-deterministic hash for trace events. Uses the
/// standard library's default hasher with its fixed initial state, so the
/// same key always maps to the same hash within (and across) runs.
#[must_use]
pub fn key_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut hasher = std::hash::DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// A sink that appends every event to a mutex-guarded vector. Test-only.
#[cfg(test)]
#[derive(Debug, Default)]
pub(crate) struct CollectingSink {
    events: std::sync::Mutex<Vec<PolicyEvent>>,
}

#[cfg(test)]
impl CollectingSink {
    /// Snapshot of every event recorded so far.
    pub(crate) fn snapshot(&self) -> Vec<PolicyEvent> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

#[cfg(test)]
impl TraceSink for CollectingSink {
    fn record(&self, event: &PolicyEvent) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn key_hash_is_stable_and_discriminating() {
        assert_eq!(key_hash(&42u64), key_hash(&42u64));
        assert_ne!(key_hash(&42u64), key_hash(&43u64));
        assert_eq!(key_hash(b"k".as_slice()), key_hash(b"k".as_slice()));
    }

    #[test]
    fn basic_event_zeroes_policy_fields() {
        let event = PolicyEvent::basic(PolicyEventKind::Evict, 7, 100, 3);
        assert_eq!(event.kind, PolicyEventKind::Evict);
        assert_eq!((event.ratio, event.queue, event.l_value), (0, 0, 0));
    }

    #[test]
    fn sink_objects_are_shareable() {
        let sink = Arc::new(CollectingSink::default());
        let shared: SharedTraceSink = sink.clone();
        shared.record(&PolicyEvent::basic(PolicyEventKind::Admit, 1, 2, 3));
        assert_eq!(sink.snapshot().len(), 1);
    }
}
