//! Server hot-path benchmarks: command parsing and get-response
//! serialization — the per-request work between the socket and the store.
//!
//! The `get_serialize` group contrasts the two response paths the server
//! has had: the copying one (`Store::get` hands back an owned value, the
//! caller formats a `VALUE` block around it) and the visitor one
//! (`Store::get_with` + `resp::append_value` serialize straight from the
//! arena chunk into a reusable buffer). The second is the live hot path.

use std::hint::black_box;
use std::io::Write;

use camp_bench::micro::Group;
use camp_kvs::protocol::{parse_command, Command};
use camp_kvs::resp;
use camp_kvs::slab::SlabConfig;
use camp_kvs::store::{EvictionMode, Store, StoreConfig};

const PARSE_LINES: u64 = 100_000;
const GET_OPS: u64 = 100_000;

fn main() {
    let group = Group::new("parse", PARSE_LINES, 20);
    group.case("get_single_key", || {
        let line: &[u8] = b"get key-00001234";
        let mut gets = 0u64;
        for _ in 0..PARSE_LINES {
            match parse_command(black_box(line)) {
                Ok(Command::Get { ref keys }) => gets += keys.len() as u64,
                _ => unreachable!("line is a valid get"),
            }
        }
        gets
    });
    group.case("get_eight_keys", || {
        let line: &[u8] = b"get k0 k1 k2 k3 k4 k5 k6 k7";
        let mut keys_seen = 0u64;
        for _ in 0..PARSE_LINES {
            match parse_command(black_box(line)) {
                Ok(Command::Get { ref keys }) => keys_seen += keys.len() as u64,
                _ => unreachable!("line is a valid get"),
            }
        }
        keys_seen
    });
    group.case("set_header", || {
        let line: &[u8] = b"set key-00001234 7 0 100";
        let mut bytes = 0u64;
        for _ in 0..PARSE_LINES {
            match parse_command(black_box(line)) {
                Ok(Command::Set { ref header }) => bytes += header.bytes as u64,
                _ => unreachable!("line is a valid set"),
            }
        }
        bytes
    });
    group.case("iqset_cost_hint", || {
        let line: &[u8] = b"iqset key-00001234 7 0 100 2500";
        let mut cost = 0u64;
        for _ in 0..PARSE_LINES {
            match parse_command(black_box(line)) {
                Ok(Command::Set { ref header }) => cost += header.cost_hint.unwrap_or(0),
                _ => unreachable!("line is a valid iqset"),
            }
        }
        cost
    });

    // A resident working set the gets always hit, so both cases measure
    // pure serialize cost rather than miss handling.
    let mut store = Store::new(StoreConfig {
        slab: SlabConfig::small(8 << 20, 8),
        eviction: EvictionMode::Lru,
    });
    let value = vec![0xABu8; 100];
    let keys: Vec<Vec<u8>> = (0..1024)
        .map(|i| format!("key-{i:08}").into_bytes())
        .collect();
    for key in &keys {
        store.set(key, &value, 0, 0, 1).expect("prefill set");
    }

    let group = Group::new("get_serialize", GET_OPS, 10);
    group.case("copying_get_plus_format", || {
        let mut response = Vec::new();
        let mut bytes = 0u64;
        for i in 0..GET_OPS {
            let key = &keys[(i % 1024) as usize];
            response.clear();
            let hit = store.get(key).expect("key is resident");
            let _ = write!(
                response,
                "VALUE {} {} {}\r\n",
                String::from_utf8_lossy(key),
                hit.flags,
                hit.value.len()
            );
            response.extend_from_slice(&hit.value);
            response.extend_from_slice(b"\r\nEND\r\n");
            bytes += black_box(&response).len() as u64;
        }
        bytes
    });
    group.case("get_with_append_value", || {
        let mut response = Vec::new();
        let mut bytes = 0u64;
        for i in 0..GET_OPS {
            let key = &keys[(i % 1024) as usize];
            response.clear();
            store
                .get_with(key, |item| {
                    resp::append_value(&mut response, key, item.flags, item.value);
                })
                .expect("key is resident");
            response.extend_from_slice(b"END\r\n");
            bytes += black_box(&response).len() as u64;
        }
        bytes
    });
}
