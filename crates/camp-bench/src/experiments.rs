//! One regeneration function per table/figure of the paper, plus the
//! ablations called out in DESIGN.md.
//!
//! Every function returns named [`Table`]s; the `repro` binary prints them
//! and optionally saves CSVs. Experiments are deterministic given the
//! harness seed and the [`Scale`].

use camp_core::rounding::{round_regular, round_to_significant_bits};
use camp_core::{Camp, Precision};
use camp_policies::{EvictionPolicy, Gds, Lru, PoolSplit, PooledLru};
use camp_sim::{simulate, OccupancyConfig, Simulation};
use camp_workload::{BgConfig, Trace};

use crate::scale::{Scale, HARNESS_SEED};
use crate::table::{f, Table};

/// The cache-size-ratio grid shared by the ratio-axis figures.
pub const RATIO_GRID: [f64; 8] = [0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0];

/// The precision grid of Figures 5a/5b/8c (∞ is appended separately).
pub const PRECISION_GRID: [u8; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

fn capacity(trace: &Trace, ratio: f64) -> u64 {
    camp_sim::capacity_for_ratio(&trace.stats(), ratio)
}

/// Capacity for the §3.1 evolving experiments: the paper's ratios there are
/// relative to a *single* trace file's unique bytes (only one TF's working
/// set is ever live; "cost-miss ratio and miss rate similar to those
/// observed in the previous section" only holds on that basis).
fn capacity_per_tf(trace: &Trace, ratio: f64) -> u64 {
    let mut sizes: std::collections::HashMap<u64, u64> = Default::default();
    for r in trace.iter().filter(|r| r.trace_id == 0) {
        sizes.insert(r.key, r.size);
    }
    let tf_bytes: u64 = sizes.values().sum();
    ((tf_bytes as f64 * ratio).round() as u64).max(1)
}

fn camp_at(capacity: u64, precision: Precision) -> Box<dyn EvictionPolicy> {
    Box::new(Camp::<u64, ()>::new(capacity, precision))
}

/// Pooled-LRU with memory split proportional to the total *request* cost
/// per pool — the stronger of the paper's two Figure 5 splits, computed in
/// advance from the whole trace exactly as the paper allows ("to give
/// Pooled LRU the greatest advantage").
fn pooled_cost_proportional(trace: &Trace, capacity: u64) -> PooledLru {
    let boundaries = [1u64, 100, 10_000];
    let mut weights = [0.0f64; 3];
    for r in trace {
        let pool = boundaries
            .partition_point(|&b| b <= r.cost)
            .saturating_sub(1);
        weights[pool] += r.cost as f64;
    }
    PooledLru::new(capacity, &boundaries, PoolSplit::Weighted(weights.to_vec()))
}

// ---------------------------------------------------------------- table 1

/// Table 1: regular vs CAMP rounding at binary precision 4, on the paper's
/// four example bit patterns.
#[must_use]
pub fn table1() -> Vec<(String, Table)> {
    let examples: [u64; 4] = [0b101101011, 0b001010011, 0b000001010, 0b000000111];
    let mut table = Table::new(vec!["x (binary)", "regular rounding", "CAMP's rounding"]);
    for x in examples {
        table.row(vec![
            format!("{x:09b}"),
            format!("{:09b}", round_regular(x, 4)),
            format!("{:09b}", round_to_significant_bits(x, 4)),
        ]);
    }
    vec![("table1".into(), table)]
}

// ------------------------------------------------------------------ fig 4

/// Figure 4: heap nodes visited by GDS vs CAMP as a function of the cache
/// size ratio, on the three-tier-cost trace.
#[must_use]
pub fn fig4(scale: Scale) -> Vec<(String, Table)> {
    let trace = scale.three_tier_trace();
    let mut table = Table::new(vec![
        "cache-ratio",
        "gds-visits",
        "camp-visits",
        "gds/camp",
        "gds-heap-ops",
        "camp-heap-ops",
    ]);
    for ratio in RATIO_GRID {
        let cap = capacity(&trace, ratio);
        let mut gds = Gds::new(cap);
        let gds_report = simulate(&mut gds, &trace);
        let mut camp = Camp::<u64, ()>::new(cap, Precision::Bits(5));
        let camp_report = simulate(&mut camp, &trace);
        let gv = gds_report.heap_node_visits.unwrap_or(0);
        let cv = camp_report.heap_node_visits.unwrap_or(0);
        table.row(vec![
            format!("{ratio:.2}"),
            gv.to_string(),
            cv.to_string(),
            f(gv as f64 / cv.max(1) as f64),
            gds_report.heap_update_ops.unwrap_or(0).to_string(),
            camp_report.heap_update_ops.unwrap_or(0).to_string(),
        ]);
    }
    vec![("fig4".into(), table)]
}

// ------------------------------------------------------------- fig 5a/5b

fn precision_sweep(scale: Scale) -> (Table, Table) {
    let trace = scale.three_tier_trace();
    let ratios = [0.1, 0.25, 0.5];
    let mut cost_table = Table::new(vec![
        "precision",
        "cost-miss@0.10",
        "cost-miss@0.25",
        "cost-miss@0.50",
    ]);
    let mut queue_table = Table::new(vec![
        "precision",
        "queues@0.10",
        "queues@0.25",
        "queues@0.50",
    ]);
    let precisions: Vec<Precision> = PRECISION_GRID
        .iter()
        .map(|&p| Precision::Bits(p))
        .chain([Precision::Infinite])
        .collect();
    for precision in precisions {
        let mut cost_row = vec![precision.to_string()];
        let mut queue_row = vec![precision.to_string()];
        for ratio in ratios {
            let cap = capacity(&trace, ratio);
            let mut camp = Camp::<u64, ()>::new(cap, precision);
            let report = simulate(&mut camp, &trace);
            cost_row.push(f(report.metrics.cost_miss_ratio()));
            queue_row.push(report.queue_count.unwrap_or(0).to_string());
        }
        cost_table.row(cost_row);
        queue_table.row(queue_row);
    }
    (cost_table, queue_table)
}

/// Figure 5a: CAMP's cost-miss ratio as a function of precision, at three
/// cache sizes; ∞ is the unrounded (GDS-equivalent) configuration.
#[must_use]
pub fn fig5a(scale: Scale) -> Vec<(String, Table)> {
    let (cost, _) = precision_sweep(scale);
    vec![("fig5a".into(), cost)]
}

/// Figure 5b: the number of non-empty LRU queues as a function of
/// precision.
#[must_use]
pub fn fig5b(scale: Scale) -> Vec<(String, Table)> {
    let (_, queues) = precision_sweep(scale);
    vec![("fig5b".into(), queues)]
}

// ------------------------------------------------------------- fig 5c/5d

fn ratio_sweep_three_tier(scale: Scale) -> (Table, Table) {
    let trace = scale.three_tier_trace();
    let mut cost_table = Table::new(vec![
        "cache-ratio",
        "camp(p=5)",
        "lru",
        "pooled-cost",
        "pooled-uniform",
        "gds",
    ]);
    let mut miss_table = cost_table.clone();
    for ratio in RATIO_GRID {
        let cap = capacity(&trace, ratio);
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            camp_at(cap, Precision::Bits(5)),
            Box::new(Lru::new(cap)),
            Box::new(pooled_cost_proportional(&trace, cap)),
            Box::new(PooledLru::new(cap, &[1, 100, 10_000], PoolSplit::Uniform)),
            Box::new(Gds::new(cap)),
        ];
        let mut cost_row = vec![format!("{ratio:.2}")];
        let mut miss_row = vec![format!("{ratio:.2}")];
        for policy in &mut policies {
            let report = simulate(policy.as_mut(), &trace);
            cost_row.push(f(report.metrics.cost_miss_ratio()));
            miss_row.push(f(report.metrics.miss_rate()));
        }
        cost_table.row(cost_row);
        miss_table.row(miss_row);
    }
    (cost_table, miss_table)
}

/// Figure 5c: cost-miss ratio vs cache size ratio (CAMP p=5, LRU, both
/// Pooled-LRU splits, GDS for reference).
#[must_use]
pub fn fig5c(scale: Scale) -> Vec<(String, Table)> {
    let (cost, _) = ratio_sweep_three_tier(scale);
    vec![("fig5c".into(), cost)]
}

/// Figure 5d: miss rate vs cache size ratio on the same runs.
#[must_use]
pub fn fig5d(scale: Scale) -> Vec<(String, Table)> {
    let (_, miss) = ratio_sweep_three_tier(scale);
    vec![("fig5d".into(), miss)]
}

// ------------------------------------------------------------- fig 6a/6b

fn evolving_sweep(scale: Scale) -> (Table, Table) {
    let trace = scale.evolving_trace();
    let mut cost_table = Table::new(vec!["cache-ratio", "camp(p=5)", "lru", "pooled-cost"]);
    let mut miss_table = cost_table.clone();
    for ratio in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let cap = capacity_per_tf(&trace, ratio);
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            camp_at(cap, Precision::Bits(5)),
            Box::new(Lru::new(cap)),
            Box::new(pooled_cost_proportional(&trace, cap)),
        ];
        let mut cost_row = vec![format!("{ratio:.2}")];
        let mut miss_row = vec![format!("{ratio:.2}")];
        for policy in &mut policies {
            let report = simulate(policy.as_mut(), &trace);
            cost_row.push(f(report.metrics.cost_miss_ratio()));
            miss_row.push(f(report.metrics.miss_rate()));
        }
        cost_table.row(cost_row);
        miss_table.row(miss_row);
    }
    (cost_table, miss_table)
}

/// Figure 6a: cost-miss ratio vs cache size under evolving access patterns
/// (ten back-to-back disjoint trace files).
#[must_use]
pub fn fig6a(scale: Scale) -> Vec<(String, Table)> {
    let (cost, _) = evolving_sweep(scale);
    vec![("fig6a".into(), cost)]
}

/// Figure 6b: miss rate vs cache size on the same workload.
#[must_use]
pub fn fig6b(scale: Scale) -> Vec<(String, Table)> {
    let (_, miss) = evolving_sweep(scale);
    vec![("fig6b".into(), miss)]
}

// ------------------------------------------------------------- fig 6c/6d

fn occupancy_at(scale: Scale, ratio: f64, name: &str) -> Vec<(String, Table)> {
    let trace = scale.evolving_trace();
    let tf_len = scale.evolving_requests();
    let cap = capacity_per_tf(&trace, ratio);
    let sample_every = (trace.len() / 200).max(1);
    let config = OccupancyConfig {
        sample_every,
        tracked_trace: 0,
    };

    let mut series = Vec::new();
    let mut landmarks = Table::new(vec!["policy", "tf1-fully-evicted-after"]);
    let policies: Vec<(&str, Box<dyn EvictionPolicy>)> = vec![
        ("camp(p=5)", camp_at(cap, Precision::Bits(5))),
        ("lru", Box::new(Lru::new(cap))),
        (
            "pooled-cost",
            Box::new(pooled_cost_proportional(&trace, cap)),
        ),
    ];
    for (label, mut policy) in policies {
        let report = Simulation::new(&trace)
            .track_occupancy(config)
            .run(policy.as_mut());
        let occupancy = report.occupancy.expect("occupancy requested");
        let residual = occupancy
            .samples
            .last()
            .map_or(0.0, |s| s.fraction_of_capacity);
        landmarks.row(vec![
            label.to_owned(),
            match occupancy.fully_evicted_at {
                // The paper reports the count of requests after TF2 began.
                Some(at) if at >= tf_len => format!("{} requests into TF2+", at - tf_len),
                Some(at) => format!("during TF1 (request {at})"),
                None => format!("never ({:.2}% of cache at end)", residual * 100.0),
            },
        ]);
        series.push((label, occupancy));
    }

    let mut table = Table::new(vec![
        "requests-after-tf2-start",
        "camp(p=5)",
        "lru",
        "pooled-cost",
    ]);
    let samples = series[0].1.samples.len();
    for i in 0..samples {
        let index = series[0].1.samples[i].request_index as i64 - tf_len as i64;
        let mut row = vec![index.to_string()];
        for (_, occupancy) in &series {
            row.push(f(occupancy.samples[i].fraction_of_capacity));
        }
        table.row(row);
    }
    vec![
        (name.to_owned(), table),
        (format!("{name}-landmarks"), landmarks),
    ]
}

/// Figure 6c: fraction of the cache occupied by TF1 pairs over time, cache
/// size ratio 0.25.
#[must_use]
pub fn fig6c(scale: Scale) -> Vec<(String, Table)> {
    occupancy_at(scale, 0.25, "fig6c")
}

/// Figure 6d: the same at cache size ratio 0.75.
#[must_use]
pub fn fig6d(scale: Scale) -> Vec<(String, Table)> {
    occupancy_at(scale, 0.75, "fig6d")
}

// ------------------------------------------------------------------ fig 7

/// Figure 7: miss rate vs cache size with variable-size pairs and constant
/// cost (cost-miss ratio equals miss rate here, as the paper notes).
#[must_use]
pub fn fig7(scale: Scale) -> Vec<(String, Table)> {
    let trace = scale.variable_size_trace();
    let mut table = Table::new(vec!["cache-ratio", "camp(p=5)", "lru", "gds"]);
    for ratio in RATIO_GRID {
        let cap = capacity(&trace, ratio);
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            camp_at(cap, Precision::Bits(5)),
            Box::new(Lru::new(cap)),
            Box::new(Gds::new(cap)),
        ];
        let mut row = vec![format!("{ratio:.2}")];
        for policy in &mut policies {
            let report = simulate(policy.as_mut(), &trace);
            row.push(f(report.metrics.miss_rate()));
        }
        table.row(row);
    }
    vec![("fig7".into(), table)]
}

// ------------------------------------------------------------- fig 8a/8b

fn equi_size_sweep(scale: Scale) -> (Table, Table) {
    let trace = scale.equi_size_trace();
    let mut cost_table = Table::new(vec!["cache-ratio", "camp(p=5)", "lru", "pooled-range"]);
    let mut miss_table = cost_table.clone();
    for ratio in RATIO_GRID {
        let cap = capacity(&trace, ratio);
        // The paper's Figure 8 pooling: ranges [1,100), [100,10K), [10K,∞),
        // memory proportional to the lowest cost in each range.
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            camp_at(cap, Precision::Bits(5)),
            Box::new(Lru::new(cap)),
            Box::new(PooledLru::new(
                cap,
                &[1, 100, 10_000],
                PoolSplit::ProportionalToLowerBound,
            )),
        ];
        let mut cost_row = vec![format!("{ratio:.2}")];
        let mut miss_row = vec![format!("{ratio:.2}")];
        for policy in &mut policies {
            let report = simulate(policy.as_mut(), &trace);
            cost_row.push(f(report.metrics.cost_miss_ratio()));
            miss_row.push(f(report.metrics.miss_rate()));
        }
        cost_table.row(cost_row);
        miss_table.row(miss_row);
    }
    (cost_table, miss_table)
}

/// Figure 8a: cost-miss ratio vs cache size on the equi-sized,
/// variable-cost trace.
#[must_use]
pub fn fig8a(scale: Scale) -> Vec<(String, Table)> {
    let (cost, _) = equi_size_sweep(scale);
    vec![("fig8a".into(), cost)]
}

/// Figure 8b: miss rate vs cache size on the same runs.
#[must_use]
pub fn fig8b(scale: Scale) -> Vec<(String, Table)> {
    let (_, miss) = equi_size_sweep(scale);
    vec![("fig8b".into(), miss)]
}

/// Figure 8c: number of LRU queues vs precision, for both the three-tier
/// trace and the equi-sized continuous-cost trace.
#[must_use]
pub fn fig8c(scale: Scale) -> Vec<(String, Table)> {
    let three_tier = scale.three_tier_trace();
    let equi = scale.equi_size_trace();
    let ratio = 0.25;
    let mut table = Table::new(vec!["precision", "queues(3-tier)", "queues(equi-size)"]);
    let precisions: Vec<Precision> = PRECISION_GRID
        .iter()
        .map(|&p| Precision::Bits(p))
        .chain([Precision::Infinite])
        .collect();
    for precision in precisions {
        let mut row = vec![precision.to_string()];
        for trace in [&three_tier, &equi] {
            let cap = capacity(trace, ratio);
            let mut camp = Camp::<u64, ()>::new(cap, precision);
            let report = simulate(&mut camp, trace);
            row.push(report.queue_count.unwrap_or(0).to_string());
        }
        table.row(row);
    }
    vec![("fig8c".into(), table)]
}

// ------------------------------------------------------------------ fig 9

/// Figures 9a/9b/9c: the live-server experiment. Replays the three-tier
/// trace against the Twemcache-like server over TCP, once with LRU and
/// once with CAMP, across cache size ratios.
#[must_use]
pub fn fig9(scale: Scale) -> Vec<(String, Table)> {
    use camp_kvs::client::Client;
    use camp_kvs::replay::replay_trace;
    use camp_kvs::server::Server;
    use camp_kvs::slab::SlabConfig;
    use camp_kvs::store::{EvictionMode, StoreConfig};

    let trace = BgConfig::paper_scaled(
        scale.server_members(),
        scale.server_requests(),
        HARNESS_SEED,
    )
    .generate();
    let unique = trace.stats().unique_bytes;

    let mut cost_table = Table::new(vec!["cache-ratio", "lru", "camp(p=5)"]);
    let mut time_table = cost_table.clone();
    let mut miss_table = cost_table.clone();

    for ratio in [0.01, 0.05, 0.1, 0.25, 0.5] {
        let memory = ((unique as f64 * ratio) as u64).max(64 * 1024);
        // Slabs scale with the memory so class geometry stays meaningful.
        let slab_size: u32 = 64 * 1024;
        let slab = SlabConfig::small(
            slab_size,
            u32::try_from(memory / u64::from(slab_size))
                .unwrap_or(1)
                .max(1),
        );
        let mut cost_row = vec![format!("{ratio:.2}")];
        let mut time_row = cost_row.clone();
        let mut miss_row = cost_row.clone();
        for eviction in [EvictionMode::Lru, EvictionMode::Camp(Precision::Bits(5))] {
            let server = Server::start("127.0.0.1:0", StoreConfig { slab, eviction })
                .expect("bind figure-9 server");
            let mut client = Client::connect(server.local_addr()).expect("connect figure-9 client");
            let report = replay_trace(&mut client, &trace).expect("replay trace");
            let _ = client.quit();
            server.shutdown();
            cost_row.push(f(report.cost_miss_ratio()));
            time_row.push(format!("{:.2}s", report.wall_time.as_secs_f64()));
            miss_row.push(f(report.miss_rate()));
        }
        cost_table.row(cost_row);
        time_table.row(time_row);
        miss_table.row(miss_row);
    }
    vec![
        ("fig9a".into(), cost_table),
        ("fig9b".into(), time_table),
        ("fig9c".into(), miss_table),
    ]
}

// -------------------------------------------------------------- ablations

/// Ablation: CAMP's LRU tie-breaking and heap-root `L` vs exact GDS
/// (arbitrary tie-breaks, `min over M\{p}` on hits), with rounding
/// disabled in both — the residual approximation error of the queue
/// structure itself.
#[must_use]
pub fn ablation_tiebreak(scale: Scale) -> Vec<(String, Table)> {
    let trace = scale.three_tier_trace();
    let mut table = Table::new(vec!["cache-ratio", "camp(p=inf)", "gds", "relative-delta"]);
    for ratio in [0.05, 0.1, 0.25, 0.5, 0.75] {
        let cap = capacity(&trace, ratio);
        let mut camp = Camp::<u64, ()>::new(cap, Precision::Infinite);
        let camp_cost = simulate(&mut camp, &trace).metrics.cost_miss_ratio();
        let mut gds = Gds::new(cap);
        let gds_cost = simulate(&mut gds, &trace).metrics.cost_miss_ratio();
        let delta = if gds_cost > 0.0 {
            (camp_cost - gds_cost) / gds_cost
        } else {
            0.0
        };
        table.row(vec![
            format!("{ratio:.2}"),
            f(camp_cost),
            f(gds_cost),
            format!("{delta:+.4}"),
        ]);
    }
    vec![("ablation-tiebreak".into(), table)]
}

/// Ablation: the adaptive integerization multiplier vs fixed multipliers
/// (1 = ratios collapse below one; cache-size = the paper's anti-pattern).
#[must_use]
pub fn ablation_multiplier(scale: Scale) -> Vec<(String, Table)> {
    let trace = scale.variable_size_trace();
    let ratio = 0.25;
    let cap = capacity(&trace, ratio);
    let mut table = Table::new(vec!["multiplier", "cost-miss", "miss-rate", "queues"]);
    let configs: Vec<(String, Box<dyn EvictionPolicy>)> = vec![
        (
            "adaptive (paper)".into(),
            Box::new(
                Camp::<u64, ()>::builder(cap)
                    .precision(Precision::Bits(5))
                    .build(),
            ),
        ),
        (
            "fixed=1".into(),
            Box::new(
                Camp::<u64, ()>::builder(cap)
                    .precision(Precision::Bits(5))
                    .fixed_multiplier(1)
                    .build(),
            ),
        ),
        (
            format!("fixed=cache-size ({cap})"),
            Box::new(
                Camp::<u64, ()>::builder(cap)
                    .precision(Precision::Bits(5))
                    .fixed_multiplier(cap)
                    .build(),
            ),
        ),
    ];
    for (label, mut policy) in configs {
        let report = simulate(policy.as_mut(), &trace);
        table.row(vec![
            label,
            f(report.metrics.cost_miss_ratio()),
            f(report.metrics.miss_rate()),
            report.queue_count.unwrap_or(0).to_string(),
        ]);
    }
    vec![("ablation-multiplier".into(), table)]
}

/// Ablation: the three Pooled-LRU memory splits of the paper, side by side.
#[must_use]
pub fn ablation_pooling(scale: Scale) -> Vec<(String, Table)> {
    let trace = scale.three_tier_trace();
    let mut table = Table::new(vec![
        "cache-ratio",
        "uniform/cost-miss",
        "cost-prop/cost-miss",
        "lower-bound/cost-miss",
        "uniform/miss",
        "cost-prop/miss",
        "lower-bound/miss",
    ]);
    for ratio in [0.05, 0.25, 0.5, 0.75] {
        let cap = capacity(&trace, ratio);
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            Box::new(PooledLru::new(cap, &[1, 100, 10_000], PoolSplit::Uniform)),
            Box::new(pooled_cost_proportional(&trace, cap)),
            Box::new(PooledLru::new(
                cap,
                &[1, 100, 10_000],
                PoolSplit::ProportionalToLowerBound,
            )),
        ];
        let mut cost_cells = Vec::new();
        let mut miss_cells = Vec::new();
        for policy in &mut policies {
            let report = simulate(policy.as_mut(), &trace);
            cost_cells.push(f(report.metrics.cost_miss_ratio()));
            miss_cells.push(f(report.metrics.miss_rate()));
        }
        let mut row = vec![format!("{ratio:.2}")];
        row.extend(cost_cells);
        row.extend(miss_cells);
        table.row(row);
    }
    vec![("ablation-pooling".into(), table)]
}

/// Extension experiment: related-work policies (LRU-K, 2Q, ARC, GD-Wheel)
/// and admission control next to CAMP on the headline trace.
#[must_use]
pub fn extension_policies(scale: Scale) -> Vec<(String, Table)> {
    use camp_policies::{Admission, AdmissionRule, Arc, GdWheel, Gdsf, Lfu, LruK, TwoQ};
    let trace = scale.three_tier_trace();
    let mut table = Table::new(vec!["cache-ratio", "policy", "cost-miss", "miss-rate"]);
    for ratio in [0.1, 0.25, 0.5] {
        let cap = capacity(&trace, ratio);
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            camp_at(cap, Precision::Bits(5)),
            Box::new(LruK::new(cap, 2)),
            Box::new(TwoQ::new(cap)),
            Box::new(Arc::new(cap)),
            Box::new(GdWheel::new(cap)),
            Box::new(Gdsf::new(cap)),
            Box::new(Lfu::new(cap)),
            Box::new(Admission::new(
                Camp::<u64, ()>::new(cap, Precision::Bits(5)),
                AdmissionRule::SecondMiss { window: 65_536 },
            )),
        ];
        for policy in &mut policies {
            let report = simulate(policy.as_mut(), &trace);
            table.row(vec![
                format!("{ratio:.2}"),
                report.policy.clone(),
                f(report.metrics.cost_miss_ratio()),
                f(report.metrics.miss_rate()),
            ]);
        }
    }
    vec![("extension-policies".into(), table)]
}

/// Extension experiment: the §6 two-level (memory + SSD-model) hierarchy.
#[must_use]
pub fn extension_hierarchy(scale: Scale) -> Vec<(String, Table)> {
    use camp_sim::hierarchy::{simulate_hierarchy, TwoLevelCache};
    let trace = scale.three_tier_trace();
    let unique = trace.stats().unique_bytes;
    let mut table = Table::new(vec![
        "l1-ratio",
        "l2-ratio",
        "flat-cost-miss",
        "hier-incurred-cost",
        "l2-hit-share",
    ]);
    for (l1_ratio, l2_ratio) in [(0.05, 0.25), (0.1, 0.5), (0.25, 1.0)] {
        let l1 = ((unique as f64 * l1_ratio) as u64).max(1);
        let l2 = ((unique as f64 * l2_ratio) as u64).max(1);
        let mut flat = Camp::<u64, ()>::new(l1, Precision::Bits(5));
        let flat_report = simulate(&mut flat, &trace);
        let mut hier = TwoLevelCache::new(
            Box::new(Camp::<u64, ()>::new(l1, Precision::Bits(5))),
            Box::new(Camp::<u64, ()>::new(l2, Precision::Bits(5))),
            50,
        );
        let metrics = simulate_hierarchy(&mut hier, &trace);
        let counted = metrics.base.hits + metrics.base.misses;
        table.row(vec![
            format!("{l1_ratio:.2}"),
            format!("{l2_ratio:.2}"),
            f(flat_report.metrics.cost_miss_ratio()),
            f(metrics.incurred_cost_ratio()),
            f(metrics.l2_hits as f64 / counted.max(1) as f64),
        ]);
    }
    vec![("extension-hierarchy".into(), table)]
}

/// Extension experiment: windowed cost-miss timeline across the evolving
/// workload — the §3.1 adaptation dynamics as rates instead of occupancy.
#[must_use]
pub fn extension_timeline(scale: Scale) -> Vec<(String, Table)> {
    use camp_policies::Lru;
    use camp_sim::timeline::windowed_metrics;

    let trace = scale.evolving_trace();
    let cap = capacity_per_tf(&trace, 0.25);
    let window = (trace.len() / 40).max(1);

    let mut series: Vec<(&str, Vec<camp_sim::timeline::WindowPoint>)> = Vec::new();
    let mut camp = Camp::<u64, ()>::new(cap, Precision::Bits(5));
    series.push(("camp(p=5)", windowed_metrics(&mut camp, &trace, window)));
    let mut lru = Lru::new(cap);
    series.push(("lru", windowed_metrics(&mut lru, &trace, window)));
    let mut pooled = pooled_cost_proportional(&trace, cap);
    series.push(("pooled-cost", windowed_metrics(&mut pooled, &trace, window)));

    let mut table = Table::new(vec![
        "window-start",
        "camp/cost-miss",
        "lru/cost-miss",
        "pooled/cost-miss",
    ]);
    let windows = series[0].1.len();
    for i in 0..windows {
        let mut row = vec![series[0].1[i].start.to_string()];
        for (_, points) in &series {
            row.push(f(points[i].metrics.cost_miss_ratio()));
        }
        table.row(row);
    }
    vec![("extension-timeline".into(), table)]
}

/// Custom-trace experiment: the Figure 5c/5d comparison on a user-supplied
/// trace file (`repro custom --trace FILE`). Pools are derived from the
/// trace's own distinct cost values when there are at most 8, else from
/// logarithmic cost ranges.
#[must_use]
pub fn custom(trace: &Trace) -> Vec<(String, Table)> {
    use camp_policies::Lru;
    let stats = trace.stats();
    // Pool boundaries: the distinct costs if few, else log-spaced ranges.
    let mut costs: Vec<u64> = trace.iter().map(|r| r.cost.max(1)).collect();
    costs.sort_unstable();
    costs.dedup();
    let boundaries: Vec<u64> = if costs.len() <= 8 {
        costs
    } else {
        let lo = costs.first().copied().unwrap_or(1).max(1);
        let hi = costs.last().copied().unwrap_or(1);
        let steps = 4u32;
        (0..steps)
            .map(|i| {
                let t = f64::from(i) / f64::from(steps);
                ((lo as f64) * (hi as f64 / lo as f64).powf(t)) as u64
            })
            .collect::<std::collections::BTreeSet<u64>>()
            .into_iter()
            .collect()
    };

    let mut cost_table = Table::new(vec!["cache-ratio", "camp(p=5)", "lru", "pooled", "gds"]);
    let mut miss_table = cost_table.clone();
    for ratio in [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let cap = camp_sim::capacity_for_ratio(&stats, ratio);
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            camp_at(cap, Precision::Bits(5)),
            Box::new(Lru::new(cap)),
            Box::new(PooledLru::new(
                cap,
                &boundaries,
                PoolSplit::ProportionalToLowerBound,
            )),
            Box::new(Gds::new(cap)),
        ];
        let mut cost_row = vec![format!("{ratio:.2}")];
        let mut miss_row = cost_row.clone();
        for policy in &mut policies {
            let report = simulate(policy.as_mut(), trace);
            cost_row.push(f(report.metrics.cost_miss_ratio()));
            miss_row.push(f(report.metrics.miss_rate()));
        }
        cost_table.row(cost_row);
        miss_table.row(miss_row);
    }
    vec![
        ("custom-cost-miss".into(), cost_table),
        ("custom-miss-rate".into(), miss_table),
    ]
}

/// Extension experiment: gradually drifting hot sets (the smooth
/// counterpart to §3.1's abrupt shifts). CAMP must keep beating LRU on
/// cost while the working set rotates under it.
#[must_use]
pub fn extension_drift(scale: Scale) -> Vec<(String, Table)> {
    use camp_policies::{Gdsf, Lfu, Lru};
    use camp_workload::DriftConfig;

    let trace =
        DriftConfig::paper_scaled(scale.members() / 2, scale.requests(), HARNESS_SEED).generate();
    let mut table = Table::new(vec!["cache-ratio", "camp(p=5)", "lru", "gdsf", "lfu"]);
    for ratio in [0.05, 0.1, 0.25, 0.5] {
        let cap = capacity(&trace, ratio);
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            camp_at(cap, Precision::Bits(5)),
            Box::new(Lru::new(cap)),
            Box::new(Gdsf::new(cap)),
            Box::new(Lfu::new(cap)),
        ];
        let mut row = vec![format!("{ratio:.2}")];
        for policy in &mut policies {
            let report = simulate(policy.as_mut(), &trace);
            row.push(f(report.metrics.cost_miss_ratio()));
        }
        table.row(row);
    }
    vec![("extension-drift".into(), table)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_workload::TraceRecord;

    #[test]
    fn custom_experiment_handles_arbitrary_traces() {
        // Tiny synthetic trace: 4 keys, 2 costs, enough rereferences for
        // non-trivial rates.
        let trace: Trace = (0..200u64)
            .map(|i| {
                let key = i % 4;
                TraceRecord::new(key, 50 + key * 10, [1u64, 500][(key % 2) as usize])
            })
            .collect();
        let tables = custom(&trace);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].0, "custom-cost-miss");
        assert_eq!(tables[0].1.len(), 7); // one row per ratio
        let rendered = tables[0].1.render();
        assert!(rendered.contains("camp(p=5)"));
    }

    #[test]
    fn custom_pools_log_ranges_for_many_costs() {
        // >8 distinct costs: pool boundaries come from log-spaced ranges
        // and the experiment must still run.
        let trace: Trace = (0..300u64)
            .map(|i| {
                let key = i % 30;
                TraceRecord::new(key, 100, 1 + key * key * 13)
            })
            .collect();
        let tables = custom(&trace);
        assert_eq!(tables[0].1.len(), 7);
    }

    #[test]
    fn table1_is_cheap_and_exact() {
        let tables = table1();
        let csv = tables[0].1.to_csv();
        assert!(csv.contains("000001010,000000000,000001010"));
    }
}
