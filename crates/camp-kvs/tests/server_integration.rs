//! End-to-end tests: real TCP server, real client, real slab memory.

use camp_core::Precision;
use camp_kvs::client::Client;
use camp_kvs::replay::replay_trace;
use camp_kvs::server::Server;
use camp_kvs::slab::SlabConfig;
use camp_kvs::store::{EvictionMode, StoreConfig};
use camp_workload::BgConfig;

fn start(eviction: EvictionMode, slab_size: u32, slabs: u32) -> Server {
    Server::start(
        "127.0.0.1:0",
        StoreConfig {
            slab: SlabConfig::small(slab_size, slabs),
            eviction,
        },
    )
    .expect("bind server")
}

#[test]
fn set_get_delete_over_the_wire() {
    let server = start(EvictionMode::Camp(Precision::Bits(5)), 16 * 1024, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert!(client.get(b"missing").unwrap().is_none());
    assert!(client.set(b"alpha", b"value-one", 42, 0).unwrap());
    let value = client.get(b"alpha").unwrap().expect("stored");
    assert_eq!(value.data, b"value-one");
    assert_eq!(value.flags, 42);

    assert!(client.delete(b"alpha").unwrap());
    assert!(!client.delete(b"alpha").unwrap());
    assert!(client.get(b"alpha").unwrap().is_none());

    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn iq_cycle_records_cost_via_timestamps() {
    let server = start(EvictionMode::Camp(Precision::Bits(5)), 16 * 1024, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Miss arms the timer.
    assert!(client.iqget(b"expensive").unwrap().is_none());
    std::thread::sleep(std::time::Duration::from_millis(20));
    // The set computes cost = elapsed micros (no hint).
    assert!(client.iqset(b"expensive", b"v", 0, 0, None).unwrap());
    assert!(client.iqget(b"expensive").unwrap().is_some());

    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn stats_reflect_activity() {
    let server = start(EvictionMode::Lru, 16 * 1024, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set(b"a", b"1", 0, 0).unwrap();
    client.set(b"b", b"2", 0, 0).unwrap();
    client.get(b"a").unwrap();
    client.get(b"nope").unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats["curr_items"], "2");
    assert_eq!(stats["cmd_set"], "2");
    assert_eq!(stats["get_hits"], "1");
    assert_eq!(stats["get_misses"], "1");

    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn multiple_concurrent_clients() {
    let server = start(EvictionMode::Camp(Precision::Bits(5)), 64 * 1024, 8);
    let addr = server.local_addr();
    let handles: Vec<_> = (0..4)
        .map(|worker: u32| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..50u32 {
                    let key = format!("w{worker}-k{i}");
                    assert!(client
                        .set(key.as_bytes(), format!("value-{i}").as_bytes(), 0, 0)
                        .unwrap());
                    let got = client.get(key.as_bytes()).unwrap().unwrap();
                    assert_eq!(got.data, format!("value-{i}").as_bytes());
                }
                client.quit().unwrap();
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(server.len(), 200);
    server.shutdown();
}

#[test]
fn camp_server_beats_lru_server_on_cost_miss() {
    // A scaled-down Figure 9a: replay the same three-tier-cost trace
    // against an LRU server and a CAMP server with identical memory.
    let trace = BgConfig::paper_scaled(400, 15_000, 77).generate();

    let run = |mode: EvictionMode| {
        let server = start(mode, 64 * 1024, 16);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let report = replay_trace(&mut client, &trace).unwrap();
        client.quit().unwrap();
        server.shutdown();
        report
    };

    let lru = run(EvictionMode::Lru);
    let camp = run(EvictionMode::Camp(Precision::Bits(5)));

    assert!(lru.requests == trace.len() && camp.requests == trace.len());
    assert!(camp.misses > 0, "cache must be under pressure for the test");
    assert!(
        camp.cost_miss_ratio() <= lru.cost_miss_ratio() + 0.02,
        "camp {:.4} should not lose to lru {:.4}",
        camp.cost_miss_ratio(),
        lru.cost_miss_ratio()
    );
    assert!(
        camp.cost_miss_ratio() < lru.cost_miss_ratio() * 0.9,
        "camp {:.4} should clearly beat lru {:.4} on three-tier costs",
        camp.cost_miss_ratio(),
        lru.cost_miss_ratio()
    );
}

#[test]
fn server_survives_value_too_large() {
    let server = start(EvictionMode::Lru, 4096, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Larger than a slab: rejected but the connection stays healthy.
    assert!(!client.set(b"big", &vec![0u8; 8192], 0, 0).unwrap());
    assert!(client.set(b"ok", b"fine", 0, 0).unwrap());
    assert_eq!(client.get(b"ok").unwrap().unwrap().data, b"fine");
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn sharded_server_handles_concurrent_clients() {
    let server = Server::start_sharded(
        "127.0.0.1:0",
        StoreConfig {
            slab: SlabConfig::small(64 * 1024, 16),
            eviction: EvictionMode::Camp(Precision::Bits(5)),
        },
        4,
    )
    .expect("bind sharded server");
    let addr = server.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|worker: u32| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..100u32 {
                    let key = format!("w{worker}-k{i}");
                    assert!(client
                        .set(
                            key.as_bytes(),
                            format!("value-{worker}-{i}").as_bytes(),
                            0,
                            0
                        )
                        .unwrap());
                    let got = client.get(key.as_bytes()).unwrap().unwrap();
                    assert_eq!(got.data, format!("value-{worker}-{i}").as_bytes());
                    if i % 7 == 0 {
                        assert!(client.delete(key.as_bytes()).unwrap());
                    }
                }
                client.quit().unwrap();
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // 8 workers x 100 keys, 15 deleted each (i % 7 == 0 for i in 0..100).
    assert_eq!(server.len(), 8 * (100 - 15));
    server.shutdown();
}

#[test]
fn sharded_and_unsharded_servers_agree_on_replay_quality() {
    let trace = BgConfig::paper_scaled(300, 8_000, 55).generate();
    // Each shard needs enough slabs to populate its size classes — too few
    // slabs per shard fragments the memory and thrashes.
    let run = |shards: usize| {
        let server = Server::start_sharded(
            "127.0.0.1:0",
            StoreConfig {
                slab: SlabConfig::small(8 * 1024, 64),
                eviction: EvictionMode::Camp(Precision::Bits(5)),
            },
            shards,
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let report = replay_trace(&mut client, &trace).unwrap();
        client.quit().unwrap();
        server.shutdown();
        report.cost_miss_ratio()
    };
    let unsharded = run(1);
    let sharded = run(4);
    // Hash partitioning adds noise but must not change the outcome class.
    assert!(
        (sharded - unsharded).abs() < 0.15,
        "sharded {sharded:.4} vs unsharded {unsharded:.4}"
    );
}

#[test]
fn extended_commands_over_the_wire() {
    let server = start(EvictionMode::Camp(Precision::Bits(5)), 16 * 1024, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // add / replace semantics.
    assert!(client.add(b"k", b"first", 0, 0).unwrap());
    assert!(!client.add(b"k", b"second", 0, 0).unwrap());
    assert_eq!(client.get(b"k").unwrap().unwrap().data, b"first");
    assert!(client.replace(b"k", b"third", 0, 0).unwrap());
    assert!(!client.replace(b"absent", b"x", 0, 0).unwrap());
    assert_eq!(client.get(b"k").unwrap().unwrap().data, b"third");

    // incr / decr.
    client.set(b"counter", b"41", 0, 0).unwrap();
    assert_eq!(client.incr(b"counter", 1).unwrap(), Some(42));
    assert_eq!(client.decr(b"counter", 100).unwrap(), Some(0));
    assert_eq!(client.incr(b"nope", 1).unwrap(), None);
    assert_eq!(client.incr(b"k", 1).unwrap(), None, "non-numeric value");

    // touch.
    client.set(b"ttl", b"v", 0, 3600).unwrap();
    assert!(client.touch(b"ttl", 7200).unwrap());
    assert!(!client.touch(b"missing", 60).unwrap());

    // version and flush_all.
    assert!(client.version().unwrap().starts_with("VERSION camp-kvs/"));
    client.flush_all().unwrap();
    assert!(client.get(b"k").unwrap().is_none());
    assert_eq!(server.len(), 0);

    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn malformed_data_block_closes_only_that_connection() {
    use std::io::{Read, Write};
    let server = start(EvictionMode::Lru, 16 * 1024, 8);
    let addr = server.local_addr();

    // A set whose data block is not CRLF-terminated: the connection is
    // dropped (protocol desync), but the server survives.
    {
        let mut bad = std::net::TcpStream::connect(addr).unwrap();
        bad.write_all(b"set k 0 0 5\r\nhelloXX").unwrap();
        bad.shutdown(std::net::Shutdown::Write).ok();
        let mut sink = Vec::new();
        let _ = bad.read_to_end(&mut sink);
    }

    // A fresh client works fine afterwards.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.set(b"alive", b"yes", 0, 0).unwrap());
    assert_eq!(client.get(b"alive").unwrap().unwrap().data, b"yes");
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn pipelined_segment_is_answered_in_order_and_fully_timed() {
    use std::io::{BufRead, BufReader, Read, Write};
    let server = start(EvictionMode::Camp(Precision::Bits(5)), 16 * 1024, 8);
    let addr = server.local_addr();

    // One TCP segment carrying the whole mixed pipeline: the server must
    // coalesce flushes while commands remain buffered, yet answer every
    // command, in order, in one concatenated response.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"set a 0 0 3\r\nAAA\r\nset b 1 0 3\r\nBBB\r\nget a b\r\nget missing\r\ndelete a\r\nget a\r\nquit\r\n",
            )
            .unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        assert_eq!(
            response,
            b"STORED\r\nSTORED\r\nVALUE a 0 3\r\nAAA\r\nVALUE b 1 3\r\nBBB\r\nEND\r\nEND\r\nDELETED\r\nEND\r\n"
        );
    }

    // A pipeline ending in a bare empty line must still flush (the
    // coalescing rule may not hold a finished response hostage).
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"get b\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "VALUE b 1 3\r\n");
        let mut rest = [0u8; 5 + 5]; // "BBB\r\n" + "END\r\n"
        reader.read_exact(&mut rest).unwrap();
        assert_eq!(&rest, b"BBB\r\nEND\r\n");
        stream.write_all(b"quit\r\n").unwrap();
    }

    // Every pipelined command was individually timed and its wire bytes
    // accounted: 4 gets across both segments (multi-key counts once),
    // 2 sets, 1 delete.
    let mut client = Client::connect(addr).unwrap();
    let detail = client.stats_detail().unwrap();
    assert_eq!(detail["latency:get:count"], "4");
    assert_eq!(detail["latency:set:count"], "2");
    assert_eq!(detail["latency:delete:count"], "1");
    assert!(detail["bytes_read:get"].parse::<u64>().unwrap() > 0);
    // Sets account for header + data block: two sets of "set x f 0 3\r\nXXX\r\n".
    assert_eq!(detail["bytes_read:set"], "36");
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn huge_announced_length_is_survivable() {
    use std::io::{Read, Write};
    let server = start(EvictionMode::Lru, 16 * 1024, 8);
    let addr = server.local_addr();
    {
        // Announce 10 bytes but send fewer and close: read_exact fails and
        // the connection ends without storing anything.
        let mut bad = std::net::TcpStream::connect(addr).unwrap();
        bad.write_all(b"set partial 0 0 10\r\nabc").unwrap();
        bad.shutdown(std::net::Shutdown::Write).ok();
        let mut sink = Vec::new();
        let _ = bad.read_to_end(&mut sink);
    }
    let mut client = Client::connect(addr).unwrap();
    assert!(client.get(b"partial").unwrap().is_none());
    client.quit().unwrap();
    server.shutdown();
}
