//! The server's telemetry surface: per-command latency histograms and the
//! snapshot/rendering layer behind `stats`, `stats detail`, and the
//! `--metrics-addr` Prometheus exposition.
//!
//! Recording sits on the per-request hot path, so [`ServerMetrics`] is
//! atomics all the way down: each command's latency goes into a lock-free
//! [`Histogram`] and the connection counters are plain `AtomicU64`s — no
//! mutex is taken that the seed server did not already take. Reading is the
//! cold path: [`TelemetryReport`] gathers a point-in-time copy of
//! everything (store counters, per-shard rows, policy internals, IQ
//! registry gauges) and renders it as either memcached `STAT` lines or
//! Prometheus text, so both protocols speak one vocabulary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use camp_policies::{PolicyEvent, PolicyEventKind, ShadowEstimate, TraceSink};
use camp_telemetry::{
    EvictionTrace, Exposition, FlightRecorder, Histogram, HistogramSnapshot, MetricKind,
};

use crate::persist::PersistSnapshot;
use crate::shard::ShardSnapshot;
use crate::store::StoreStats;

/// The command classes that get their own latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// `get`/`gets`.
    Get,
    /// `iqget`.
    IqGet,
    /// `set`/`add`/`replace`.
    Set,
    /// `iqset`.
    IqSet,
    /// `delete`.
    Delete,
    /// Everything else (`incr`, `touch`, `flush_all`, `stats`, ...).
    Other,
}

impl CmdKind {
    /// Every kind, in display order.
    pub const ALL: [CmdKind; 6] = [
        CmdKind::Get,
        CmdKind::IqGet,
        CmdKind::Set,
        CmdKind::IqSet,
        CmdKind::Delete,
        CmdKind::Other,
    ];

    /// The command name used in `STAT latency:<name>:*` lines and
    /// `camp_<name>_latency_us` metric families.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CmdKind::Get => "get",
            CmdKind::IqGet => "iqget",
            CmdKind::Set => "set",
            CmdKind::IqSet => "iqset",
            CmdKind::Delete => "delete",
            CmdKind::Other => "other",
        }
    }

    /// A stable one-byte discriminant, used to stamp request spans in the
    /// flight recorder (which stores fixed-width words, not enums).
    #[must_use]
    pub fn code(self) -> u8 {
        CmdKind::ALL.iter().position(|&k| k == self).unwrap_or(5) as u8
    }

    /// Inverse of [`CmdKind::code`]; unknown bytes decode as `Other`.
    #[must_use]
    pub fn from_code(code: u8) -> CmdKind {
        CmdKind::ALL
            .get(usize::from(code))
            .copied()
            .unwrap_or(CmdKind::Other)
    }
}

/// Why the server refused or severed a connection (the overload /
/// input-hardening surface). Each cause has its own counter, exported as
/// `camp_conn_rejected_total{cause=...}` and `STAT conn_rejected:<cause>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCause {
    /// Accept-time rejection: the `max_conns` cap was reached.
    MaxConns,
    /// A connection idle (or trickling without completing a command —
    /// slowloris) past the idle timeout was evicted.
    IdleTimeout,
    /// A storage command declared a data block over `max_value_len`.
    ValueTooLarge,
}

impl RejectCause {
    /// Every cause, in display order.
    pub const ALL: [RejectCause; 3] = [
        RejectCause::MaxConns,
        RejectCause::IdleTimeout,
        RejectCause::ValueTooLarge,
    ];

    /// The label value used in STAT lines and the Prometheus exposition.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RejectCause::MaxConns => "max_conns",
            RejectCause::IdleTimeout => "idle_timeout",
            RejectCause::ValueTooLarge => "value_too_large",
        }
    }
}

/// Which fault a chaos plan injected (see [`crate::fault`]), exported as
/// `camp_faults_injected_total{kind=...}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Pre-response connection drop.
    Drop,
    /// Injected response delay.
    Delay,
    /// Forced `SERVER_ERROR injected fault` reply.
    Error,
}

impl FaultKind {
    /// Every kind, in display order.
    pub const ALL: [FaultKind; 3] = [FaultKind::Drop, FaultKind::Delay, FaultKind::Error];

    /// The label value used in STAT lines and the Prometheus exposition.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Error => "error",
        }
    }
}

/// Lock-free server-side counters and latency histograms.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    latency: [Histogram; 6],
    /// Wire bytes consumed per command class (command line plus any data
    /// block, terminators included).
    bytes_read: [AtomicU64; 6],
    /// Connections refused or severed, by cause ([`RejectCause::ALL`]
    /// order).
    rejected: [AtomicU64; 3],
    /// Faults injected by the active chaos plan ([`FaultKind::ALL`]
    /// order).
    faults: [AtomicU64; 3],
    /// Connections accepted.
    pub connections_opened: AtomicU64,
    /// Connections that have ended.
    pub connections_closed: AtomicU64,
    /// Lines rejected with `CLIENT_ERROR`.
    pub protocol_errors: AtomicU64,
    /// Segments batched into each scatter-gather (`writev`) flush call —
    /// the distribution proves how deep the iovec batching runs.
    pub flush_segments: Histogram,
}

impl ServerMetrics {
    /// Fresh, zeroed metrics.
    #[must_use]
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    fn index(kind: CmdKind) -> usize {
        CmdKind::ALL.iter().position(|&k| k == kind).unwrap_or(5)
    }

    /// Records one command's handling latency in microseconds. Wait-free.
    pub fn record_latency(&self, kind: CmdKind, micros: u64) {
        self.latency[Self::index(kind)].record(micros);
    }

    /// The histogram backing `kind` (snapshots, merges, tests).
    #[must_use]
    pub fn latency(&self, kind: CmdKind) -> &Histogram {
        &self.latency[Self::index(kind)]
    }

    /// Adds wire bytes consumed by one command of class `kind`. Wait-free.
    pub fn record_bytes(&self, kind: CmdKind, bytes: u64) {
        // ordering: Relaxed — statistics counter.
        self.bytes_read[Self::index(kind)].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Wire bytes consumed so far by commands of class `kind`.
    #[must_use]
    pub fn bytes_read(&self, kind: CmdKind) -> u64 {
        // ordering: Relaxed — statistics counter.
        self.bytes_read[Self::index(kind)].load(Ordering::Relaxed)
    }

    /// Per-command byte counters, in [`CmdKind::ALL`] order.
    #[must_use]
    pub fn bytes_read_snapshot(&self) -> Vec<(&'static str, u64)> {
        CmdKind::ALL
            .iter()
            .map(|&kind| (kind.name(), self.bytes_read(kind)))
            .collect()
    }

    /// Counts one refused or severed connection.
    pub fn record_rejected(&self, cause: RejectCause) {
        let index = RejectCause::ALL
            .iter()
            .position(|&c| c == cause)
            .unwrap_or(0);
        // ordering: Relaxed — statistics counter.
        self.rejected[index].fetch_add(1, Ordering::Relaxed);
    }

    /// Connections refused or severed for `cause` so far.
    #[must_use]
    pub fn rejected(&self, cause: RejectCause) -> u64 {
        let index = RejectCause::ALL
            .iter()
            .position(|&c| c == cause)
            .unwrap_or(0);
        // ordering: Relaxed — statistics counter.
        self.rejected[index].load(Ordering::Relaxed)
    }

    /// Per-cause rejection counters, in [`RejectCause::ALL`] order.
    #[must_use]
    pub fn rejected_snapshot(&self) -> Vec<(&'static str, u64)> {
        RejectCause::ALL
            .iter()
            .map(|&cause| (cause.name(), self.rejected(cause)))
            .collect()
    }

    /// Counts one injected fault.
    pub fn record_fault(&self, kind: FaultKind) {
        let index = FaultKind::ALL.iter().position(|&k| k == kind).unwrap_or(0);
        // ordering: Relaxed — statistics counter.
        self.faults[index].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-kind injected-fault counters, in [`FaultKind::ALL`] order.
    #[must_use]
    pub fn faults_snapshot(&self) -> Vec<(&'static str, u64)> {
        FaultKind::ALL
            .iter()
            .zip(&self.faults)
            // ordering: Relaxed — statistics counter.
            .map(|(&kind, counter)| (kind.name(), counter.load(Ordering::Relaxed)))
            .collect()
    }

    /// Total commands timed so far, across every class — the denominator
    /// a drain report uses to count requests completed while draining.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.latency.iter().map(Histogram::count).sum()
    }

    /// Zeroes every histogram and counter (the `stats reset` command).
    pub fn reset(&self) {
        for histogram in &self.latency {
            histogram.reset();
        }
        // ordering: Relaxed(x6) — statistics counters; a racing
        // recorder landing just after the zeroing is a normal race
        // between `stats reset` and live traffic.
        for counter in &self.bytes_read {
            counter.store(0, Ordering::Relaxed);
        }
        for counter in &self.rejected {
            counter.store(0, Ordering::Relaxed);
        }
        for counter in &self.faults {
            counter.store(0, Ordering::Relaxed);
        }
        self.connections_opened.store(0, Ordering::Relaxed);
        self.connections_closed.store(0, Ordering::Relaxed);
        self.protocol_errors.store(0, Ordering::Relaxed);
        self.flush_segments.reset();
    }

    /// Snapshots every per-command histogram, in [`CmdKind::ALL`] order.
    #[must_use]
    pub fn latency_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        CmdKind::ALL
            .iter()
            .map(|&kind| (kind.name(), self.latency(kind).snapshot()))
            .collect()
    }
}

/// Live per-worker reactor counters (one row per event-loop worker; the
/// legacy thread-per-connection backend keeps a single all-zero row).
/// Incremented with relaxed atomics from inside each worker's loop, read
/// by `stats detail` and the Prometheus exposition.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Connections currently owned by this worker.
    pub live_connections: AtomicU64,
    /// `epoll_wait` returns that delivered at least one event.
    pub epoll_wakeups: AtomicU64,
    /// Timer-wheel timers fired (idle sweeps, fault resumes, drain ticks).
    pub timer_fires: AtomicU64,
    /// Times backpressure paused reads (pending output over the
    /// high-water mark caused `EPOLLIN` to be withheld).
    pub write_pauses: AtomicU64,
    /// Sockets accepted by this worker's own `SO_REUSEPORT` listener
    /// (zero on the single-listener path, where an accept thread feeds
    /// the intake queue instead).
    pub accepts: AtomicU64,
    /// Connection events drained from `epoll_wait` into the batched run
    /// queue.
    pub events_dispatched: AtomicU64,
}

/// A point-in-time copy of one worker's [`WorkerStats`] row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStatsSnapshot {
    /// Connections currently owned by this worker.
    pub live_connections: u64,
    /// `epoll_wait` returns that delivered at least one event.
    pub epoll_wakeups: u64,
    /// Timer-wheel timers fired.
    pub timer_fires: u64,
    /// Reads paused by output backpressure.
    pub write_pauses: u64,
    /// Sockets accepted by this worker's own listener.
    pub accepts: u64,
    /// Connection events drained into the batched run queue.
    pub events_dispatched: u64,
}

/// The per-worker reactor counter registry, sized once at startup for the
/// resolved worker count.
#[derive(Debug)]
pub struct ReactorStats {
    workers: Vec<WorkerStats>,
}

impl ReactorStats {
    /// A registry with `workers` zeroed rows (at least one, so the legacy
    /// backend still has a stable schema).
    #[must_use]
    pub fn new(workers: usize) -> ReactorStats {
        ReactorStats {
            workers: (0..workers.max(1))
                .map(|_| WorkerStats::default())
                .collect(),
        }
    }

    /// The counter row for worker `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range — worker indices are assigned from
    /// the same count the registry was sized with.
    #[must_use]
    pub fn worker(&self, index: usize) -> &WorkerStats {
        &self.workers[index]
    }

    /// Point-in-time copies of every row, in worker order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<WorkerStatsSnapshot> {
        self.workers
            .iter()
            // ordering: Relaxed(x6) — statistics counters; the snapshot
            // is advisory and never gates an operation.
            .map(|w| WorkerStatsSnapshot {
                live_connections: w.live_connections.load(Ordering::Relaxed),
                epoll_wakeups: w.epoll_wakeups.load(Ordering::Relaxed),
                timer_fires: w.timer_fires.load(Ordering::Relaxed),
                write_pauses: w.write_pauses.load(Ordering::Relaxed),
                accepts: w.accepts.load(Ordering::Relaxed),
                events_dispatched: w.events_dispatched.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Zeroes the event counters (`stats reset`). Live-connection gauges
    /// are left alone — they track reality, not history.
    pub fn reset(&self) {
        for w in &self.workers {
            // ordering: Relaxed(x5) — statistics counters; see `snapshot`.
            w.epoll_wakeups.store(0, Ordering::Relaxed);
            w.timer_fires.store(0, Ordering::Relaxed);
            w.write_pauses.store(0, Ordering::Relaxed);
            w.accepts.store(0, Ordering::Relaxed);
            w.events_dispatched.store(0, Ordering::Relaxed);
        }
    }
}

/// Adapts policy-layer [`PolicyEvent`]s into the flight recorder's
/// [`EvictionTrace`] ring. This is the glue the store attaches to every
/// shard's policy: policies stay clock- and telemetry-free, the recorder
/// stays policy-agnostic.
#[derive(Debug, Clone)]
pub struct RecorderSink {
    recorder: Arc<FlightRecorder>,
}

impl RecorderSink {
    /// A sink feeding `recorder`.
    #[must_use]
    pub fn new(recorder: Arc<FlightRecorder>) -> RecorderSink {
        RecorderSink { recorder }
    }
}

impl TraceSink for RecorderSink {
    fn record(&self, event: &PolicyEvent) {
        self.recorder.record_eviction(&EvictionTrace {
            admit: event.kind == PolicyEventKind::Admit,
            key_hash: event.key_hash,
            size: event.size,
            cost: event.cost,
            ratio: event.ratio,
            queue: event.queue,
            l_value: event.l_value,
        });
    }
}

/// A point-in-time copy of every telemetry surface the server exposes,
/// assembled under no long-held lock and rendered to either protocol.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TelemetryReport {
    /// Server version string.
    pub version: &'static str,
    /// The (first shard's) policy name.
    pub policy: String,
    /// Per-shard telemetry rows, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Cross-shard aggregate counters.
    pub totals: StoreStats,
    /// Aggregate live items.
    pub curr_items: usize,
    /// Aggregate slab census `(chunk_size, slabs, items)`.
    pub slab_census: Vec<(u32, usize, u64)>,
    /// Per-command latency snapshots `(command, histogram)`.
    pub latencies: Vec<(&'static str, HistogramSnapshot)>,
    /// Wire bytes consumed per command class `(command, bytes)`.
    pub bytes_read: Vec<(&'static str, u64)>,
    /// Connections accepted so far.
    pub connections_opened: u64,
    /// Connections ended so far.
    pub connections_closed: u64,
    /// Protocol parse errors so far.
    pub protocol_errors: u64,
    /// Connections refused or severed `(cause, count)`, in
    /// [`RejectCause::ALL`] order.
    pub conn_rejected: Vec<(&'static str, u64)>,
    /// Chaos faults injected `(kind, count)`, in [`FaultKind::ALL`] order.
    pub faults_injected: Vec<(&'static str, u64)>,
    /// Poisoned-mutex recoveries since process start.
    pub lock_poison_recovered: u64,
    /// Unmatched `iqget` misses currently registered.
    pub iq_miss_registry_size: u64,
    /// Registry entries dropped by the TTL sweep so far.
    pub iq_sweep_reclaimed: u64,
    /// Merged shadow-cache estimates (0.5×/1×/2× capacity), across shards.
    pub shadow: Vec<ShadowEstimate>,
    /// The shadow profiler's spatial sampling modulus (1-in-N keys).
    pub shadow_sample_modulus: u64,
    /// Request spans recorded by the flight recorder so far.
    pub spans_recorded: u64,
    /// Spans promoted to the slow-request log so far.
    pub slow_recorded: u64,
    /// The active `--slow-log` threshold, if one is set.
    pub slow_threshold_us: Option<u64>,
    /// Policy admissions traced so far.
    pub trace_admits: u64,
    /// Policy evictions traced so far.
    pub trace_evicts: u64,
    /// Distribution of miss costs over traced evictions.
    pub eviction_costs: HistogramSnapshot,
    /// Trajectory of CAMP's `L` term as sampled at eviction decisions.
    pub l_values: HistogramSnapshot,
    /// Per-worker reactor internals, in worker order.
    pub reactor_workers: Vec<WorkerStatsSnapshot>,
    /// Distribution of segments batched per scatter-gather flush call.
    pub flush_segments: HistogramSnapshot,
    /// Durability engine counters; `None` when `--data-dir` is unset.
    pub persist: Option<PersistSnapshot>,
}

impl TelemetryReport {
    /// Aggregate logical bytes resident.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.used_bytes).sum()
    }

    /// The `stats` summary table (the seed's surface plus the per-shard
    /// breakdown and eviction causes).
    #[must_use]
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!("STAT policy {}", self.policy));
        lines.push(format!("STAT shards {}", self.shards.len()));
        for (i, shard) in self.shards.iter().enumerate() {
            lines.push(format!("STAT shard:{i}:policy {}", shard.policy));
        }
        lines.push(format!("STAT curr_items {}", self.curr_items));
        lines.push(format!("STAT bytes {}", self.used_bytes()));
        let t = &self.totals;
        lines.push(format!("STAT get_hits {}", t.get_hits));
        lines.push(format!("STAT get_misses {}", t.get_misses));
        lines.push(format!("STAT cmd_set {}", t.sets));
        lines.push(format!("STAT evictions {}", t.evictions));
        lines.push(format!("STAT slab_evictions {}", t.slab_evictions));
        lines.push(format!("STAT slab_reassignments {}", t.slab_reassignments));
        lines.push(format!("STAT slab_reclaims {}", t.slab_reclaims));
        lines.push(format!("STAT expired {}", t.expired));
        for (i, shard) in self.shards.iter().enumerate() {
            let s = &shard.stats;
            lines.push(format!(
                "STAT shard:{i} items={} bytes={} hits={} misses={} evictions={}",
                shard.items,
                shard.used_bytes,
                s.get_hits,
                s.get_misses,
                s.evictions + s.slab_evictions,
            ));
        }
        for &(chunk_size, slabs, items) in &self.slab_census {
            if slabs > 0 {
                lines.push(format!(
                    "STAT slab_class:{chunk_size} slabs={slabs} items={items}"
                ));
            }
        }
        lines
    }

    /// The `stats detail` table: the summary plus latency quantiles per
    /// command, eviction causes, per-shard policy internals, connection
    /// counters, and the IQ registry gauges.
    #[must_use]
    pub fn detail_lines(&self) -> Vec<String> {
        let mut lines = self.summary_lines();
        lines.push(format!("STAT deletes {}", self.totals.deletes));
        lines.push(format!("STAT evictions:capacity {}", self.totals.evictions));
        lines.push(format!(
            "STAT evictions:slab_reassign {}",
            self.totals.slab_evictions
        ));
        lines.push(format!("STAT evictions:expired {}", self.totals.expired));
        for (command, snap) in &self.latencies {
            lines.push(format!("STAT latency:{command}:count {}", snap.count));
            lines.push(format!(
                "STAT latency:{command}:p50_us {}",
                snap.quantile(0.5)
            ));
            lines.push(format!(
                "STAT latency:{command}:p90_us {}",
                snap.quantile(0.9)
            ));
            lines.push(format!(
                "STAT latency:{command}:p99_us {}",
                snap.quantile(0.99)
            ));
            lines.push(format!(
                "STAT latency:{command}:p999_us {}",
                snap.quantile(0.999)
            ));
            lines.push(format!("STAT latency:{command}:max_us {}", snap.max));
        }
        for (command, bytes) in &self.bytes_read {
            lines.push(format!("STAT bytes_read:{command} {bytes}"));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            for gauge in &shard.policy_stats.gauges {
                match &gauge.label {
                    Some((_, label_value)) => lines.push(format!(
                        "STAT policy:{i}:{}:{label_value} {}",
                        gauge.name, gauge.value
                    )),
                    None => {
                        lines.push(format!("STAT policy:{i}:{} {}", gauge.name, gauge.value));
                    }
                }
            }
        }
        lines.push(format!(
            "STAT connections_opened {}",
            self.connections_opened
        ));
        lines.push(format!(
            "STAT connections_closed {}",
            self.connections_closed
        ));
        lines.push(format!("STAT protocol_errors {}", self.protocol_errors));
        for (cause, count) in &self.conn_rejected {
            lines.push(format!("STAT conn_rejected:{cause} {count}"));
        }
        for (kind, count) in &self.faults_injected {
            lines.push(format!("STAT faults_injected:{kind} {count}"));
        }
        lines.push(format!(
            "STAT lock_poison_recovered {}",
            self.lock_poison_recovered
        ));
        lines.push(format!(
            "STAT iq_miss_registry_size {}",
            self.iq_miss_registry_size
        ));
        lines.push(format!(
            "STAT iq_sweep_reclaimed {}",
            self.iq_sweep_reclaimed
        ));
        for (i, w) in self.reactor_workers.iter().enumerate() {
            lines.push(format!(
                "STAT reactor:worker{i} live={} wakeups={} timer_fires={} write_pauses={} \
                 accepts={} events={}",
                w.live_connections,
                w.epoll_wakeups,
                w.timer_fires,
                w.write_pauses,
                w.accepts,
                w.events_dispatched,
            ));
        }
        lines.push(format!(
            "STAT reactor:flush_segments:count {}",
            self.flush_segments.count
        ));
        lines.push(format!(
            "STAT reactor:flush_segments:p50 {}",
            self.flush_segments.quantile(0.5)
        ));
        lines.push(format!(
            "STAT reactor:flush_segments:max {}",
            self.flush_segments.max
        ));
        lines.push(format!("STAT trace:spans_recorded {}", self.spans_recorded));
        lines.push(format!("STAT trace:slow_recorded {}", self.slow_recorded));
        lines.push(format!(
            "STAT trace:slow_threshold_us {}",
            self.slow_threshold_us
                .map_or_else(|| "disabled".to_owned(), |us| us.to_string())
        ));
        lines.push(format!("STAT trace:admits {}", self.trace_admits));
        lines.push(format!("STAT trace:evictions {}", self.trace_evicts));
        lines.push(format!(
            "STAT trace:eviction_cost_p50 {}",
            self.eviction_costs.quantile(0.5)
        ));
        lines.push(format!(
            "STAT trace:l_value_p50 {}",
            self.l_values.quantile(0.5)
        ));
        match &self.persist {
            None => lines.push("STAT persist:state disabled".to_owned()),
            Some(p) => {
                lines.push(format!("STAT persist:state {}", p.state));
                lines.push(format!("STAT persist:errors {}", p.errors));
                lines.push(format!("STAT persist:bytes {}", p.bytes));
                lines.push(format!("STAT persist:fsyncs {}", p.fsyncs));
                lines.push(format!("STAT persist:records {}", p.records));
                lines.push(format!("STAT persist:dropped {}", p.dropped));
                lines.push(format!("STAT persist:recovered {}", p.recovered));
                lines.push(format!("STAT persist:quarantined {}", p.quarantined));
                lines.push(format!("STAT persist:torn_bytes {}", p.torn_bytes));
                lines.push(format!("STAT persist:snapshots {}", p.snapshots));
                lines.push(format!("STAT persist:trips {}", p.trips));
                lines.push(format!("STAT persist:rearms {}", p.rearms));
                lines.push(format!("STAT persist:segments {}", p.segments));
            }
        }
        lines.extend(self.profile_lines());
        lines
    }

    /// The `stats profile` table: the online shadow profiler's hit-ratio
    /// and cost-miss estimates at fractional capacities.
    #[must_use]
    pub fn profile_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!(
            "STAT profile:sample_modulus {}",
            self.shadow_sample_modulus
        ));
        for est in &self.shadow {
            let scale = est.scale_label();
            lines.push(format!("STAT profile:{scale}:capacity {}", est.capacity));
            lines.push(format!(
                "STAT profile:{scale}:sampled_gets {}",
                est.sampled_gets
            ));
            lines.push(format!(
                "STAT profile:{scale}:sampled_hits {}",
                est.sampled_hits
            ));
            lines.push(format!(
                "STAT profile:{scale}:hit_ratio {:.4}",
                est.hit_ratio
            ));
            lines.push(format!(
                "STAT profile:{scale}:est_miss_cost {}",
                est.est_miss_cost
            ));
        }
        lines
    }

    /// The Prometheus text exposition served on `--metrics-addr`. Every
    /// family is emitted even at zero so scrapers and the CI smoke test see
    /// a stable schema from the first scrape.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut exp = Exposition::new();
        exp.family(
            "camp_build_info",
            "server version and configuration (constant 1)",
            MetricKind::Gauge,
        );
        let shard_count = self.shards.len().to_string();
        exp.int_value(
            "camp_build_info",
            &[
                ("version", self.version),
                ("policy", &self.policy),
                ("shards", &shard_count),
            ],
            1,
        );

        for (command, snap) in &self.latencies {
            let family = format!("camp_{command}_latency_us");
            exp.family(
                &family,
                "command handling latency in microseconds",
                MetricKind::Summary,
            );
            exp.summary(&family, &[], snap);
        }

        exp.family(
            "camp_bytes_read_total",
            "wire bytes consumed per command class",
            MetricKind::Counter,
        );
        for (command, bytes) in &self.bytes_read {
            exp.int_value("camp_bytes_read_total", &[("cmd", command)], *bytes);
        }

        let t = &self.totals;
        let counters: [(&str, &str, u64); 8] = [
            ("camp_get_hits_total", "get/iqget hits", t.get_hits),
            ("camp_get_misses_total", "get/iqget misses", t.get_misses),
            ("camp_cmd_set_total", "successful stores", t.sets),
            ("camp_deletes_total", "successful deletes", t.deletes),
            (
                "camp_slab_reassignments_total",
                "random slab evictions forced by calcification",
                t.slab_reassignments,
            ),
            (
                "camp_slab_reclaims_total",
                "slabs reclaimed after emptying naturally",
                t.slab_reclaims,
            ),
            (
                "camp_connections_opened_total",
                "connections accepted",
                self.connections_opened,
            ),
            (
                "camp_protocol_errors_total",
                "lines rejected with CLIENT_ERROR",
                self.protocol_errors,
            ),
        ];
        for (name, help, value) in counters {
            exp.family(name, help, MetricKind::Counter);
            exp.int_value(name, &[], value);
        }

        exp.family(
            "camp_conn_rejected_total",
            "connections refused or severed, by cause",
            MetricKind::Counter,
        );
        for (cause, count) in &self.conn_rejected {
            exp.int_value("camp_conn_rejected_total", &[("cause", cause)], *count);
        }
        exp.family(
            "camp_faults_injected_total",
            "chaos faults injected, by kind",
            MetricKind::Counter,
        );
        for (kind, count) in &self.faults_injected {
            exp.int_value("camp_faults_injected_total", &[("kind", kind)], *count);
        }
        exp.family(
            "camp_lock_poison_recovered_total",
            "poisoned mutexes recovered after a panicking holder",
            MetricKind::Counter,
        );
        exp.int_value(
            "camp_lock_poison_recovered_total",
            &[],
            self.lock_poison_recovered,
        );

        exp.family(
            "camp_evictions_total",
            "items dropped, by cause",
            MetricKind::Counter,
        );
        exp.int_value(
            "camp_evictions_total",
            &[("cause", "capacity")],
            t.evictions,
        );
        exp.int_value(
            "camp_evictions_total",
            &[("cause", "slab_reassign")],
            t.slab_evictions,
        );
        exp.int_value("camp_evictions_total", &[("cause", "expired")], t.expired);

        exp.family("camp_items", "live items", MetricKind::Gauge);
        exp.int_value("camp_items", &[], self.curr_items as u64);
        exp.family(
            "camp_used_bytes",
            "logical bytes resident",
            MetricKind::Gauge,
        );
        exp.int_value("camp_used_bytes", &[], self.used_bytes());

        exp.family(
            "camp_shard_items",
            "live items per shard",
            MetricKind::Gauge,
        );
        for (i, shard) in self.shards.iter().enumerate() {
            exp.int_value(
                "camp_shard_items",
                &[("shard", &i.to_string())],
                shard.items as u64,
            );
        }
        exp.family(
            "camp_shard_used_bytes",
            "logical bytes resident per shard",
            MetricKind::Gauge,
        );
        for (i, shard) in self.shards.iter().enumerate() {
            exp.int_value(
                "camp_shard_used_bytes",
                &[("shard", &i.to_string())],
                shard.used_bytes,
            );
        }
        exp.family(
            "camp_shard_hits_total",
            "get/iqget hits per shard",
            MetricKind::Counter,
        );
        for (i, shard) in self.shards.iter().enumerate() {
            exp.int_value(
                "camp_shard_hits_total",
                &[("shard", &i.to_string())],
                shard.stats.get_hits,
            );
        }
        exp.family(
            "camp_shard_misses_total",
            "get/iqget misses per shard",
            MetricKind::Counter,
        );
        for (i, shard) in self.shards.iter().enumerate() {
            exp.int_value(
                "camp_shard_misses_total",
                &[("shard", &i.to_string())],
                shard.stats.get_misses,
            );
        }
        exp.family(
            "camp_shard_evictions_total",
            "evictions per shard (all causes)",
            MetricKind::Counter,
        );
        for (i, shard) in self.shards.iter().enumerate() {
            exp.int_value(
                "camp_shard_evictions_total",
                &[("shard", &i.to_string())],
                shard.stats.evictions + shard.stats.slab_evictions,
            );
        }

        // Policy-internal gauges: one family per distinct gauge name, in
        // first-seen order, sampled per shard (plus any sub-dimension label
        // the gauge carries, e.g. CAMP's per-queue lengths by ratio).
        let mut names: Vec<&'static str> = Vec::new();
        for shard in &self.shards {
            for gauge in &shard.policy_stats.gauges {
                if !names.contains(&gauge.name) {
                    names.push(gauge.name);
                }
            }
        }
        for name in names {
            let family = format!("camp_policy_{name}");
            exp.family(&family, "policy-internal gauge", MetricKind::Gauge);
            for (i, shard) in self.shards.iter().enumerate() {
                let shard_label = i.to_string();
                for gauge in shard.policy_stats.gauges.iter().filter(|g| g.name == name) {
                    match &gauge.label {
                        Some((key, value)) => exp.int_value(
                            &family,
                            &[("shard", &shard_label), (key, value)],
                            gauge.value,
                        ),
                        None => {
                            exp.int_value(&family, &[("shard", &shard_label)], gauge.value);
                        }
                    }
                }
            }
        }

        exp.family(
            "camp_iq_miss_registry_size",
            "unmatched iqget misses currently registered",
            MetricKind::Gauge,
        );
        exp.int_value(
            "camp_iq_miss_registry_size",
            &[],
            self.iq_miss_registry_size,
        );
        exp.family(
            "camp_iq_sweep_reclaimed_total",
            "iq miss-registry entries dropped by the TTL sweep",
            MetricKind::Counter,
        );
        exp.int_value(
            "camp_iq_sweep_reclaimed_total",
            &[],
            self.iq_sweep_reclaimed,
        );

        exp.family(
            "camp_slab_class_slabs",
            "slabs assigned per chunk-size class",
            MetricKind::Gauge,
        );
        for &(chunk_size, slabs, _) in &self.slab_census {
            exp.int_value(
                "camp_slab_class_slabs",
                &[("chunk_size", &chunk_size.to_string())],
                slabs as u64,
            );
        }
        exp.family(
            "camp_slab_class_items",
            "items resident per chunk-size class",
            MetricKind::Gauge,
        );
        for &(chunk_size, _, items) in &self.slab_census {
            exp.int_value(
                "camp_slab_class_items",
                &[("chunk_size", &chunk_size.to_string())],
                items,
            );
        }

        exp.family(
            "camp_shadow_hit_ratio",
            "estimated hit ratio at fractional capacities (sampled shadow caches)",
            MetricKind::Gauge,
        );
        for est in &self.shadow {
            let scale = est.scale_label();
            exp.value("camp_shadow_hit_ratio", &[("scale", &scale)], est.hit_ratio);
        }
        exp.family(
            "camp_shadow_est_miss_cost_total",
            "estimated cumulative miss cost at fractional capacities",
            MetricKind::Counter,
        );
        for est in &self.shadow {
            let scale = est.scale_label();
            exp.int_value(
                "camp_shadow_est_miss_cost_total",
                &[("scale", &scale)],
                est.est_miss_cost,
            );
        }
        exp.family(
            "camp_shadow_sampled_gets_total",
            "lookups that fell in the shadow profiler's key sample",
            MetricKind::Counter,
        );
        for est in &self.shadow {
            let scale = est.scale_label();
            exp.int_value(
                "camp_shadow_sampled_gets_total",
                &[("scale", &scale)],
                est.sampled_gets,
            );
        }

        exp.family(
            "camp_eviction_cost",
            "miss cost of traced eviction victims",
            MetricKind::Summary,
        );
        exp.summary("camp_eviction_cost", &[], &self.eviction_costs);
        exp.family(
            "camp_l_value",
            "CAMP L term sampled at eviction decisions",
            MetricKind::Summary,
        );
        exp.summary("camp_l_value", &[], &self.l_values);

        let trace_counters: [(&str, &str, u64); 4] = [
            (
                "camp_trace_spans_total",
                "request spans recorded by the flight recorder",
                self.spans_recorded,
            ),
            (
                "camp_trace_slow_total",
                "spans promoted to the slow-request log",
                self.slow_recorded,
            ),
            (
                "camp_trace_admits_total",
                "policy admissions traced",
                self.trace_admits,
            ),
            (
                "camp_trace_evictions_total",
                "policy evictions traced",
                self.trace_evicts,
            ),
        ];
        for (name, help, value) in trace_counters {
            exp.family(name, help, MetricKind::Counter);
            exp.int_value(name, &[], value);
        }

        exp.family(
            "camp_reactor_live_connections",
            "connections currently owned per reactor worker",
            MetricKind::Gauge,
        );
        for (i, w) in self.reactor_workers.iter().enumerate() {
            exp.int_value(
                "camp_reactor_live_connections",
                &[("worker", &i.to_string())],
                w.live_connections,
            );
        }
        exp.family(
            "camp_reactor_epoll_wakeups_total",
            "epoll_wait returns that delivered events, per worker",
            MetricKind::Counter,
        );
        for (i, w) in self.reactor_workers.iter().enumerate() {
            exp.int_value(
                "camp_reactor_epoll_wakeups_total",
                &[("worker", &i.to_string())],
                w.epoll_wakeups,
            );
        }
        exp.family(
            "camp_reactor_timer_fires_total",
            "timer-wheel timers fired, per worker",
            MetricKind::Counter,
        );
        for (i, w) in self.reactor_workers.iter().enumerate() {
            exp.int_value(
                "camp_reactor_timer_fires_total",
                &[("worker", &i.to_string())],
                w.timer_fires,
            );
        }
        exp.family(
            "camp_reactor_write_pauses_total",
            "reads paused by output backpressure, per worker",
            MetricKind::Counter,
        );
        for (i, w) in self.reactor_workers.iter().enumerate() {
            exp.int_value(
                "camp_reactor_write_pauses_total",
                &[("worker", &i.to_string())],
                w.write_pauses,
            );
        }
        exp.family(
            "camp_reactor_accepts_total",
            "sockets accepted by each worker's own SO_REUSEPORT listener",
            MetricKind::Counter,
        );
        for (i, w) in self.reactor_workers.iter().enumerate() {
            exp.int_value(
                "camp_reactor_accepts_total",
                &[("worker", &i.to_string())],
                w.accepts,
            );
        }
        exp.family(
            "camp_reactor_events_dispatched_total",
            "connection events drained into the batched run queue, per worker",
            MetricKind::Counter,
        );
        for (i, w) in self.reactor_workers.iter().enumerate() {
            exp.int_value(
                "camp_reactor_events_dispatched_total",
                &[("worker", &i.to_string())],
                w.events_dispatched,
            );
        }
        exp.family(
            "camp_reactor_flush_writev_segments",
            "segments batched per scatter-gather (writev) flush call",
            MetricKind::Summary,
        );
        exp.summary(
            "camp_reactor_flush_writev_segments",
            &[],
            &self.flush_segments,
        );

        // Durability families are emitted even with persistence disabled so
        // the schema is stable; `camp_persist_state` disambiguates.
        exp.family(
            "camp_persist_state",
            "durability engine state (0=disabled, 1=active, 2=degraded)",
            MetricKind::Gauge,
        );
        let state_code = match self.persist.as_ref().map(|p| p.state) {
            None => 0,
            Some("degraded") => 2,
            Some(_) => 1,
        };
        exp.int_value("camp_persist_state", &[], state_code);
        let p = self.persist.clone().unwrap_or_default();
        let persist_counters: [(&str, &str, u64); 7] = [
            (
                "camp_persist_errors_total",
                "append-log I/O errors (append, fsync, repair)",
                p.errors,
            ),
            (
                "camp_persist_bytes_total",
                "bytes appended to the durability log",
                p.bytes,
            ),
            (
                "camp_persist_fsyncs_total",
                "successful fsyncs of the active segment",
                p.fsyncs,
            ),
            (
                "camp_persist_records_total",
                "records appended to the durability log",
                p.records,
            ),
            (
                "camp_persist_dropped_total",
                "mutations not persisted while degraded",
                p.dropped,
            ),
            (
                "camp_persist_quarantined_total",
                "corrupt records skipped by boot-time recovery",
                p.quarantined,
            ),
            (
                "camp_persist_trips_total",
                "active-to-degraded transitions of the durability engine",
                p.trips,
            ),
        ];
        for (name, help, value) in persist_counters {
            exp.family(name, help, MetricKind::Counter);
            exp.int_value(name, &[], value);
        }
        exp.family(
            "camp_persist_segments",
            "segment files currently in the durability log",
            MetricKind::Gauge,
        );
        exp.int_value("camp_persist_segments", &[], p.segments);
        exp.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_policies::PolicyStats;

    fn sample_report() -> TelemetryReport {
        let histogram = Histogram::new();
        for v in [10u64, 20, 3000] {
            histogram.record(v);
        }
        let mut policy_stats = PolicyStats::default();
        policy_stats.push("l_value", 17);
        policy_stats.push("queue_count", 3);
        policy_stats.push("heap_visits", 44);
        policy_stats.push_labelled("queue_len", "ratio", "8", 2);
        TelemetryReport {
            version: "test",
            policy: "camp(p=5)".to_owned(),
            shards: vec![ShardSnapshot {
                stats: StoreStats::default(),
                items: 2,
                used_bytes: 128,
                policy: "camp(p=5)".to_owned(),
                policy_stats,
            }],
            totals: StoreStats::default(),
            curr_items: 2,
            slab_census: vec![(120, 1, 2)],
            latencies: vec![("get", histogram.snapshot())],
            bytes_read: vec![("get", 640), ("set", 1280)],
            connections_opened: 1,
            connections_closed: 0,
            protocol_errors: 0,
            conn_rejected: vec![
                ("max_conns", 4),
                ("idle_timeout", 1),
                ("value_too_large", 3),
            ],
            faults_injected: vec![("drop", 7), ("delay", 8), ("error", 9)],
            lock_poison_recovered: 1,
            iq_miss_registry_size: 5,
            iq_sweep_reclaimed: 2,
            shadow: vec![ShadowEstimate {
                scale: (1, 2),
                capacity: 512,
                sampled_gets: 40,
                sampled_hits: 30,
                hit_ratio: 0.75,
                est_miss_cost: 640,
            }],
            shadow_sample_modulus: 64,
            spans_recorded: 11,
            slow_recorded: 2,
            slow_threshold_us: Some(500),
            trace_admits: 9,
            trace_evicts: 4,
            eviction_costs: {
                let h = Histogram::new();
                h.record(8);
                h.record(16);
                h.snapshot()
            },
            l_values: Histogram::new().snapshot(),
            reactor_workers: vec![WorkerStatsSnapshot {
                live_connections: 3,
                epoll_wakeups: 100,
                timer_fires: 6,
                write_pauses: 1,
                accepts: 12,
                events_dispatched: 150,
            }],
            flush_segments: {
                let h = Histogram::new();
                h.record(1);
                h.record(4);
                h.snapshot()
            },
            persist: Some(PersistSnapshot {
                state: "active",
                errors: 1,
                bytes: 4096,
                fsyncs: 12,
                records: 57,
                dropped: 2,
                recovered: 31,
                quarantined: 3,
                torn_bytes: 17,
                snapshots: 4,
                trips: 1,
                rearms: 1,
                segments: 2,
            }),
        }
    }

    #[test]
    fn detail_lines_cover_every_surface() {
        let text = sample_report().detail_lines().join("\n");
        for needle in [
            "STAT latency:get:p50_us",
            "STAT latency:get:p99_us",
            "STAT policy:0:l_value 17",
            "STAT policy:0:queue_count 3",
            "STAT policy:0:heap_visits 44",
            "STAT policy:0:queue_len:8 2",
            "STAT evictions:capacity",
            "STAT evictions:slab_reassign",
            "STAT evictions:expired",
            "STAT iq_miss_registry_size 5",
            "STAT iq_sweep_reclaimed 2",
            "STAT shard:0 items=2",
            "STAT bytes_read:get 640",
            "STAT bytes_read:set 1280",
            "STAT conn_rejected:max_conns 4",
            "STAT conn_rejected:idle_timeout 1",
            "STAT conn_rejected:value_too_large 3",
            "STAT faults_injected:drop 7",
            "STAT lock_poison_recovered 1",
            "STAT reactor:worker0 live=3 wakeups=100 timer_fires=6 write_pauses=1 accepts=12 events=150",
            "STAT reactor:flush_segments:count 2",
            "STAT trace:spans_recorded 11",
            "STAT trace:slow_recorded 2",
            "STAT trace:slow_threshold_us 500",
            "STAT trace:admits 9",
            "STAT trace:evictions 4",
            "STAT persist:state active",
            "STAT persist:errors 1",
            "STAT persist:bytes 4096",
            "STAT persist:fsyncs 12",
            "STAT persist:recovered 31",
            "STAT persist:quarantined 3",
            "STAT persist:segments 2",
            "STAT profile:sample_modulus 64",
            "STAT profile:0.5x:hit_ratio 0.7500",
            "STAT profile:0.5x:est_miss_cost 640",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn profile_lines_stand_alone() {
        let text = sample_report().profile_lines().join("\n");
        assert!(text.contains("STAT profile:0.5x:capacity 512"), "{text}");
        assert!(text.contains("STAT profile:0.5x:sampled_gets 40"), "{text}");
        assert!(text.contains("STAT profile:0.5x:sampled_hits 30"), "{text}");
    }

    #[test]
    fn cmd_kind_codes_round_trip() {
        for kind in CmdKind::ALL {
            assert_eq!(CmdKind::from_code(kind.code()), kind);
        }
        assert_eq!(CmdKind::from_code(200), CmdKind::Other);
    }

    #[test]
    fn reactor_stats_snapshot_and_reset() {
        let stats = ReactorStats::new(2);
        stats
            .worker(0)
            .epoll_wakeups
            .fetch_add(5, Ordering::Relaxed);
        stats.worker(1).live_connections.store(2, Ordering::Relaxed);
        stats.worker(1).write_pauses.fetch_add(1, Ordering::Relaxed);
        stats.worker(0).accepts.fetch_add(3, Ordering::Relaxed);
        stats
            .worker(0)
            .events_dispatched
            .fetch_add(9, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].epoll_wakeups, 5);
        assert_eq!(snap[0].accepts, 3);
        assert_eq!(snap[0].events_dispatched, 9);
        assert_eq!(snap[1].live_connections, 2);
        assert_eq!(snap[1].write_pauses, 1);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap[0].epoll_wakeups, 0);
        assert_eq!(snap[0].accepts, 0);
        assert_eq!(snap[0].events_dispatched, 0);
        assert_eq!(snap[1].write_pauses, 0);
        // Gauges survive a reset.
        assert_eq!(snap[1].live_connections, 2);
    }

    #[test]
    fn recorder_sink_forwards_policy_events() {
        let recorder = Arc::new(FlightRecorder::new(1, None));
        let sink = RecorderSink::new(recorder.clone());
        sink.record(&PolicyEvent::basic(PolicyEventKind::Admit, 1, 10, 2));
        sink.record(&PolicyEvent {
            kind: PolicyEventKind::Evict,
            key_hash: 2,
            size: 20,
            cost: 5,
            ratio: 1,
            queue: 0,
            l_value: 3,
        });
        assert_eq!(recorder.admits_recorded(), 1);
        assert_eq!(recorder.evicts_recorded(), 1);
        assert_eq!(recorder.eviction_cost_snapshot().count, 1);
    }

    #[test]
    fn prometheus_rendering_names_every_family() {
        let text = sample_report().render_prometheus();
        for needle in [
            "# TYPE camp_get_latency_us summary",
            "camp_get_latency_us{quantile=\"0.5\"}",
            "camp_get_latency_us_count 3",
            "camp_policy_l_value{shard=\"0\"} 17",
            "camp_policy_heap_visits{shard=\"0\"} 44",
            "camp_policy_queue_len{shard=\"0\",ratio=\"8\"} 2",
            "camp_evictions_total{cause=\"capacity\"}",
            "camp_iq_miss_registry_size 5",
            "camp_build_info{version=\"test\",policy=\"camp(p=5)\",shards=\"1\"} 1",
            "camp_slab_class_items{chunk_size=\"120\"} 2",
            "camp_bytes_read_total{cmd=\"get\"} 640",
            "camp_bytes_read_total{cmd=\"set\"} 1280",
            "camp_conn_rejected_total{cause=\"max_conns\"} 4",
            "camp_conn_rejected_total{cause=\"value_too_large\"} 3",
            "camp_faults_injected_total{kind=\"drop\"} 7",
            "camp_lock_poison_recovered_total 1",
            "camp_shadow_hit_ratio{scale=\"0.5x\"} 0.75",
            "camp_shadow_est_miss_cost_total{scale=\"0.5x\"} 640",
            "camp_shadow_sampled_gets_total{scale=\"0.5x\"} 40",
            "# TYPE camp_eviction_cost summary",
            "camp_eviction_cost_count 2",
            "# TYPE camp_l_value summary",
            "camp_trace_spans_total 11",
            "camp_trace_slow_total 2",
            "camp_trace_admits_total 9",
            "camp_trace_evictions_total 4",
            "camp_reactor_live_connections{worker=\"0\"} 3",
            "camp_reactor_epoll_wakeups_total{worker=\"0\"} 100",
            "camp_reactor_timer_fires_total{worker=\"0\"} 6",
            "camp_reactor_write_pauses_total{worker=\"0\"} 1",
            "camp_reactor_accepts_total{worker=\"0\"} 12",
            "camp_reactor_events_dispatched_total{worker=\"0\"} 150",
            "# TYPE camp_reactor_flush_writev_segments summary",
            "camp_reactor_flush_writev_segments_count 2",
            "camp_persist_state 1",
            "camp_persist_errors_total 1",
            "camp_persist_bytes_total 4096",
            "camp_persist_fsyncs_total 12",
            "camp_persist_records_total 57",
            "camp_persist_dropped_total 2",
            "camp_persist_quarantined_total 3",
            "camp_persist_segments 2",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn metrics_record_and_reset() {
        let metrics = ServerMetrics::new();
        metrics.record_latency(CmdKind::Get, 100);
        metrics.record_latency(CmdKind::Set, 200);
        metrics.record_bytes(CmdKind::Get, 10);
        metrics.record_bytes(CmdKind::Get, 15);
        metrics.connections_opened.fetch_add(1, Ordering::Relaxed);
        metrics.record_rejected(RejectCause::MaxConns);
        metrics.record_rejected(RejectCause::MaxConns);
        metrics.record_rejected(RejectCause::ValueTooLarge);
        metrics.record_fault(FaultKind::Drop);
        assert_eq!(metrics.rejected(RejectCause::MaxConns), 2);
        assert_eq!(metrics.rejected(RejectCause::IdleTimeout), 0);
        assert_eq!(
            metrics.rejected_snapshot(),
            vec![
                ("max_conns", 2),
                ("idle_timeout", 0),
                ("value_too_large", 1)
            ]
        );
        assert_eq!(
            metrics.faults_snapshot(),
            vec![("drop", 1), ("delay", 0), ("error", 0)]
        );
        assert_eq!(metrics.total_requests(), 2);
        assert_eq!(metrics.latency(CmdKind::Get).count(), 1);
        assert_eq!(metrics.latency(CmdKind::Set).count(), 1);
        assert_eq!(metrics.latency(CmdKind::Delete).count(), 0);
        assert_eq!(metrics.bytes_read(CmdKind::Get), 25);
        assert_eq!(metrics.bytes_read(CmdKind::Set), 0);
        let bytes = metrics.bytes_read_snapshot();
        assert_eq!(bytes.len(), 6);
        assert_eq!(bytes[0], ("get", 25));
        metrics.reset();
        assert_eq!(metrics.latency(CmdKind::Get).count(), 0);
        assert_eq!(metrics.bytes_read(CmdKind::Get), 0);
        assert_eq!(metrics.rejected(RejectCause::MaxConns), 0);
        assert_eq!(metrics.faults_snapshot()[0], ("drop", 0));
        assert_eq!(metrics.connections_opened.load(Ordering::Relaxed), 0);
        let snaps = metrics.latency_snapshots();
        assert_eq!(snaps.len(), 6);
        assert_eq!(snaps[0].0, "get");
    }
}
