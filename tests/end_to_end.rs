//! Workspace-level integration tests: the full pipeline from workload
//! generation through simulation to the paper's headline comparisons.

use camp::core::{Camp, Precision};
use camp::policies::{EvictionPolicy, Gds, Lru, PoolSplit, PooledLru};
use camp::sim::{simulate, sweep_ratios, OccupancyConfig, Simulation};
use camp::workload::{evolving_workload, BgConfig};

#[test]
fn headline_result_camp_beats_lru_and_pooled_on_cost() {
    // The paper's central claim, end to end: on the BG-like trace with
    // {1, 100, 10K} costs, CAMP's cost-miss ratio beats both LRU and the
    // expert-partitioned Pooled-LRU across cache sizes.
    let trace = BgConfig::paper_scaled(10_000, 200_000, 11).generate();
    let stats = trace.stats();
    for ratio in [0.05, 0.1, 0.25, 0.5] {
        let cap = camp::sim::capacity_for_ratio(&stats, ratio);
        let mut camp_policy: Camp<u64, ()> = Camp::new(cap, Precision::Bits(5));
        let mut lru = Lru::new(cap);
        let mut pooled =
            PooledLru::new(cap, &[1, 100, 10_000], PoolSplit::ProportionalToLowerBound);
        let camp_cost = simulate(&mut camp_policy, &trace).metrics.cost_miss_ratio();
        let lru_cost = simulate(&mut lru, &trace).metrics.cost_miss_ratio();
        let pooled_cost = simulate(&mut pooled, &trace).metrics.cost_miss_ratio();
        assert!(
            camp_cost < lru_cost,
            "ratio {ratio}: camp {camp_cost:.4} !< lru {lru_cost:.4}"
        );
        assert!(
            camp_cost <= pooled_cost + 1e-9,
            "ratio {ratio}: camp {camp_cost:.4} !<= pooled {pooled_cost:.4}"
        );
    }
}

#[test]
fn camp_matches_gds_decisions_at_any_precision() {
    // Figure 5a end to end: the cost-miss ratio is flat across precision
    // and indistinguishable from exact GDS.
    let trace = BgConfig::paper_scaled(5_000, 150_000, 5).generate();
    let cap = camp::sim::capacity_for_ratio(&trace.stats(), 0.25);
    let mut gds = Gds::new(cap);
    let gds_cost = simulate(&mut gds, &trace).metrics.cost_miss_ratio();
    for p in [1u8, 3, 5, 8] {
        let mut camp_policy: Camp<u64, ()> = Camp::new(cap, Precision::Bits(p));
        let camp_cost = simulate(&mut camp_policy, &trace).metrics.cost_miss_ratio();
        assert!(
            (camp_cost - gds_cost).abs() / gds_cost.max(1e-9) < 0.10,
            "p={p}: camp {camp_cost:.4} vs gds {gds_cost:.4}"
        );
    }
    // And CAMP(∞) is essentially exactly GDS.
    let mut exact: Camp<u64, ()> = Camp::new(cap, Precision::Infinite);
    let exact_cost = simulate(&mut exact, &trace).metrics.cost_miss_ratio();
    assert!(
        (exact_cost - gds_cost).abs() / gds_cost.max(1e-9) < 0.01,
        "camp(inf) {exact_cost:.4} vs gds {gds_cost:.4}"
    );
}

#[test]
fn camp_heap_work_is_a_fraction_of_gds_heap_work() {
    // Figure 4 end to end: same trace, same capacity, same heap structure —
    // CAMP must visit far fewer heap nodes, and the gap must widen with
    // the cache size.
    let trace = BgConfig::paper_scaled(5_000, 150_000, 8).generate();
    let stats = trace.stats();
    let mut factors = Vec::new();
    for ratio in [0.1, 0.5, 0.9] {
        let cap = camp::sim::capacity_for_ratio(&stats, ratio);
        let mut gds = Gds::new(cap);
        let gds_visits = simulate(&mut gds, &trace).heap_node_visits.unwrap();
        let mut camp_policy: Camp<u64, ()> = Camp::new(cap, Precision::Bits(5));
        let camp_visits = simulate(&mut camp_policy, &trace).heap_node_visits.unwrap();
        assert!(
            camp_visits < gds_visits,
            "ratio {ratio}: camp visited {camp_visits} >= gds {gds_visits}"
        );
        factors.push(gds_visits as f64 / camp_visits.max(1) as f64);
    }
    assert!(
        factors.windows(2).all(|w| w[0] <= w[1] * 1.05),
        "advantage should grow (or hold) with cache size: {factors:?}"
    );
    assert!(factors.last().unwrap() > &3.0, "{factors:?}");
}

#[test]
fn evolving_patterns_are_adapted_to() {
    // §3.1 end to end: after the working set shifts, every policy must
    // eventually evict (nearly) all of TF1; LRU must be the fastest.
    let base = BgConfig::paper_scaled(2_000, 50_000, 17);
    let trace = evolving_workload(&base, 3);
    let tf_bytes: u64 = {
        let mut sizes = std::collections::HashMap::new();
        for r in trace.iter().filter(|r| r.trace_id == 0) {
            sizes.insert(r.key, r.size);
        }
        sizes.values().sum()
    };
    let cap = tf_bytes / 4;
    let config = OccupancyConfig {
        sample_every: 1_000,
        tracked_trace: 0,
    };

    let mut lru = Lru::new(cap);
    let lru_occ = Simulation::new(&trace)
        .track_occupancy(config)
        .run(&mut lru)
        .occupancy
        .unwrap();
    let mut camp_policy: Camp<u64, ()> = Camp::new(cap, Precision::Bits(5));
    let camp_occ = Simulation::new(&trace)
        .track_occupancy(config)
        .run(&mut camp_policy)
        .occupancy
        .unwrap();

    let lru_gone = lru_occ.fully_evicted_at.expect("LRU flushes TF1");
    if let Some(camp_gone) = camp_occ.fully_evicted_at {
        assert!(
            lru_gone <= camp_gone,
            "LRU ({lru_gone}) must flush TF1 no later than CAMP ({camp_gone})"
        );
    } else {
        // CAMP kept a tail of expensive TF1 pairs — the paper's Figure 6d
        // behaviour — but it must be tiny.
        let end = camp_occ.samples.last().unwrap();
        assert!(
            end.fraction_of_capacity < 0.05,
            "CAMP's TF1 tail too large: {:.4}",
            end.fraction_of_capacity
        );
    }
}

#[test]
fn sweep_api_composes_with_boxed_policies() {
    let trace = BgConfig::paper_scaled(2_000, 40_000, 3).generate();
    let points = sweep_ratios(&trace, &[0.1, 0.3, 0.6], |cap| {
        Box::new(Camp::<u64, ()>::new(cap, Precision::Bits(5)))
    });
    assert_eq!(points.len(), 3);
    // Cost-miss must be non-increasing in capacity.
    let costs: Vec<f64> = points
        .iter()
        .map(|p| p.report.metrics.cost_miss_ratio())
        .collect();
    assert!(costs.windows(2).all(|w| w[0] >= w[1] - 1e-9), "{costs:?}");
}

#[test]
fn trace_files_roundtrip_through_the_simulator() {
    // Write a trace to disk, read it back, and get identical simulation
    // results — the reproducibility path users of trace files rely on.
    let trace = BgConfig::paper_scaled(1_000, 20_000, 9).generate();
    let dir = std::env::temp_dir().join("camp-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.trace");
    trace.save(&path).unwrap();
    let reloaded = camp::workload::Trace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let cap = camp::sim::capacity_for_ratio(&trace.stats(), 0.2);
    let mut a: Camp<u64, ()> = Camp::new(cap, Precision::Bits(5));
    let mut b: Camp<u64, ()> = Camp::new(cap, Precision::Bits(5));
    let ra = simulate(&mut a, &trace);
    let rb = simulate(&mut b, &reloaded);
    assert_eq!(ra.metrics, rb.metrics);
}

#[test]
fn boxed_policy_collection_is_usable_generically() {
    // The trait-object workflow the examples use.
    let trace = BgConfig::paper_scaled(1_000, 30_000, 4).generate();
    let cap = camp::sim::capacity_for_ratio(&trace.stats(), 0.25);
    let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
        Box::new(Camp::<u64, ()>::new(cap, Precision::Bits(5))),
        Box::new(Lru::new(cap)),
        Box::new(Gds::new(cap)),
    ];
    for policy in &mut policies {
        let report = simulate(policy.as_mut(), &trace);
        assert!(report.metrics.requests == trace.len());
        assert!(policy.used_bytes() <= policy.capacity());
    }
}
