//! GD-Wheel (Li & Cox, LADIS'13): the other GDS approximation.
//!
//! The paper's §5 contrasts CAMP with GD-Wheel, which rounds the *overall
//! priority* of each pair and stores pairs in hierarchical cost wheels —
//! timing-wheel-like arrays of queues. Finding the minimum costs O(1)
//! amortized, but when a lower wheel completes a rotation the entries of the
//! next higher-wheel slot must be *migrated* down and re-bucketed, a
//! procedure CAMP avoids entirely (CAMP's rounded cost-to-size ratio never
//! changes while a pair is resident). This implementation exists so that the
//! migration overhead and the approximation behaviour can be measured
//! against CAMP — see [`GdWheel::migrations`].
//!
//! Structure: `LEVELS` wheels of `W = 256` slots. A pair with priority
//! (deadline) `d` lives on the wheel whose base-256 digit is the highest one
//! in which `d` differs from the global clock `L`; within the wheel it sits
//! in the slot indexed by that digit. Eviction scans wheel 0 from the hand
//! forward; when every low slot is empty, the next non-empty higher-wheel
//! slot is migrated down, advancing `L`.

use std::collections::HashMap;

use camp_core::arena::{Arena, EntryId};
use camp_core::lru_list::{Linked, Links, LruList};
use camp_core::rounding::{Precision, RatioRounder};

use crate::policy::{
    key_hash, AccessOutcome, CacheKey, CacheRequest, EvictionPolicy, PolicyEvent, PolicyEventKind,
    SharedTraceSink,
};

const WHEEL_BITS: u32 = 8;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS; // 256
const LEVELS: usize = 8; // 8 levels x 8 bits: the full u64 priority space

#[derive(Debug)]
struct Entry<K> {
    key: K,
    size: u64,
    cost: u64,
    ratio: u64,
    deadline: u64,
    level: u8,
    slot: u16,
    links: Links,
}

impl<K> Linked for Entry<K> {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// The GD-Wheel replacement policy.
///
/// # Examples
///
/// ```
/// use camp_policies::{CacheRequest, EvictionPolicy, GdWheel};
///
/// let mut wheel = GdWheel::new(100);
/// let mut evicted = Vec::new();
/// wheel.reference(CacheRequest::new(1, 50, 10_000), &mut evicted); // expensive
/// wheel.reference(CacheRequest::new(2, 50, 1), &mut evicted);      // cheap
/// wheel.reference(CacheRequest::new(3, 50, 1), &mut evicted);
/// assert_eq!(evicted, vec![2]); // the cheap pair went first
/// ```
#[derive(Debug)]
pub struct GdWheel<K = u64> {
    map: HashMap<K, EntryId>,
    arena: Arena<Entry<K>>,
    /// `LEVELS * WHEEL_SLOTS` LRU queues, row-major by level.
    slots: Vec<LruList>,
    rounder: RatioRounder,
    l: u64,
    capacity: u64,
    used: u64,
    migrations: u64,
    sink: Option<SharedTraceSink>,
}

impl<K: CacheKey> GdWheel<K> {
    /// The largest priority the wheels can represent. With eight 8-bit
    /// levels this is the whole `u64` space, so the clock can never
    /// saturate within a feasible trace (saturation would degenerate the
    /// wheel into near-LRU, a failure mode long high-cost traces would
    /// otherwise hit).
    pub const MAX_PRIORITY: u64 = u64::MAX;

    /// Creates a GD-Wheel cache with the given byte capacity.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        GdWheel {
            map: HashMap::new(),
            arena: Arena::new(),
            slots: vec![LruList::new(); LEVELS * WHEEL_SLOTS],
            rounder: RatioRounder::new(Precision::Infinite),
            l: 0,
            capacity,
            used: 0,
            migrations: 0,
            sink: None,
        }
    }

    /// Builds the trace event for `entry` at the current clock (the trace
    /// `queue` field carries the entry's wheel level).
    fn event_for(&self, kind: PolicyEventKind, entry: &Entry<K>) -> PolicyEvent {
        PolicyEvent {
            kind,
            key_hash: key_hash(&entry.key),
            size: entry.size,
            cost: entry.cost,
            ratio: entry.ratio,
            queue: u32::from(entry.level),
            l_value: self.l,
        }
    }

    /// Total entries migrated between wheels so far — the overhead CAMP's
    /// design eliminates (§5).
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The global clock (non-decreasing).
    #[must_use]
    pub fn l_value(&self) -> u64 {
        self.l
    }

    fn digit(value: u64, level: usize) -> usize {
        ((value >> (WHEEL_BITS * level as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize
    }

    /// The wheel level for a deadline: the highest base-256 digit in which
    /// it differs from the clock (stale deadlines map to level 0).
    fn level_for(&self, deadline: u64) -> usize {
        let diff = deadline ^ self.l;
        if diff == 0 || deadline <= self.l {
            return 0;
        }
        let high_bit = 63 - diff.leading_zeros();
        ((high_bit / WHEEL_BITS) as usize).min(LEVELS - 1)
    }

    fn place(&mut self, id: EntryId) {
        let deadline = self.arena.get(id).expect("live entry").deadline;
        let level = self.level_for(deadline);
        let slot = if deadline <= self.l {
            // Stale entry: first in line at the current hand.
            Self::digit(self.l, 0)
        } else {
            Self::digit(deadline, level)
        };
        {
            let entry = self.arena.get_mut(id).expect("live entry");
            entry.level = level as u8;
            entry.slot = slot as u16;
        }
        self.slots[level * WHEEL_SLOTS + slot].push_back(&mut self.arena, id);
    }

    fn unplace(&mut self, id: EntryId) {
        let (level, slot) = {
            let entry = self.arena.get(id).expect("live entry");
            (entry.level as usize, entry.slot as usize)
        };
        self.slots[level * WHEEL_SLOTS + slot].unlink(&mut self.arena, id);
    }

    /// The first non-empty slot in clock order, if any.
    fn next_slot(&self) -> Option<(usize, usize)> {
        for level in 0..LEVELS {
            let hand = Self::digit(self.l, level);
            for off in 0..WHEEL_SLOTS {
                let slot = (hand + off) % WHEEL_SLOTS;
                if !self.slots[level * WHEEL_SLOTS + slot].is_empty() {
                    return Some((level, slot));
                }
            }
        }
        None
    }

    fn on_hit(&mut self, key: &K) -> bool {
        let Some(&id) = self.map.get(key) else {
            return false;
        };
        // Hit: refresh the deadline and re-bucket (O(1), no migration).
        self.unplace(id);
        let ratio = self.arena.get(id).expect("live entry").ratio;
        let deadline = self.l.saturating_add(ratio);
        self.arena.get_mut(id).expect("live entry").deadline = deadline;
        self.place(id);
        true
    }

    fn evict_one(&mut self, evicted: &mut Vec<K>) -> bool {
        loop {
            let Some((level, slot)) = self.next_slot() else {
                return false;
            };
            if level == 0 {
                let list = &mut self.slots[slot];
                let id = list.pop_front(&mut self.arena).expect("non-empty slot");
                let entry = self.arena.remove(id).expect("live entry");
                self.map.remove(&entry.key);
                self.used -= entry.size;
                self.l = self.l.max(entry.deadline);
                if let Some(sink) = &self.sink {
                    sink.record(&self.event_for(PolicyEventKind::Evict, &entry));
                }
                evicted.push(entry.key);
                return true;
            }
            // Migration: advance the clock to the earliest deadline in the
            // slot, then re-bucket every entry one level down.
            let index = level * WHEEL_SLOTS + slot;
            let ids: Vec<EntryId> = self.slots[index].iter(&self.arena).collect();
            let min_deadline = ids
                .iter()
                .filter_map(|&id| self.arena.get(id).map(|e| e.deadline))
                .min()
                .expect("non-empty slot");
            self.l = self.l.max(min_deadline);
            self.migrations += ids.len() as u64;
            for id in ids {
                self.slots[index].unlink(&mut self.arena, id);
                self.place(id);
            }
        }
    }
}

impl<K: CacheKey> EvictionPolicy<K> for GdWheel<K> {
    fn name(&self) -> String {
        "gd-wheel".to_owned()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn reference(&mut self, req: CacheRequest<K>, evicted: &mut Vec<K>) -> AccessOutcome {
        assert!(req.size > 0, "key-value pairs have positive size");
        if self.on_hit(&req.key) {
            return AccessOutcome::Hit;
        }
        if req.size > self.capacity {
            return AccessOutcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            let ok = self.evict_one(evicted);
            debug_assert!(ok, "byte accounting out of sync");
        }
        let ratio = self.rounder.rounded_ratio(req.cost, req.size);
        let deadline = self.l.saturating_add(ratio);
        let id = self.arena.insert(Entry {
            key: req.key.clone(),
            size: req.size,
            cost: req.cost,
            ratio,
            deadline,
            level: 0,
            slot: 0,
            links: Links::new(),
        });
        self.place(id);
        if let Some(sink) = &self.sink {
            let entry = self.arena.get(id).expect("just inserted");
            sink.record(&self.event_for(PolicyEventKind::Admit, entry));
        }
        self.map.insert(req.key, id);
        self.used += req.size;
        AccessOutcome::MissInserted
    }

    fn touch(&mut self, key: &K) -> bool {
        self.on_hit(key)
    }

    fn victim(&self) -> Option<K> {
        let (level, slot) = self.next_slot()?;
        let list = &self.slots[level * WHEEL_SLOTS + slot];
        if level == 0 {
            return list
                .front()
                .and_then(|id| self.arena.get(id))
                .map(|e| e.key.clone());
        }
        // A higher-level slot would be migrated first; its earliest-deadline
        // entry is the one the clock advances to.
        list.iter(&self.arena)
            .filter_map(|id| self.arena.get(id))
            .min_by_key(|e| e.deadline)
            .map(|e| e.key.clone())
    }

    fn remove(&mut self, key: &K) -> bool {
        let Some(id) = self.map.remove(key) else {
            return false;
        };
        self.unplace(id);
        let entry = self.arena.remove(id).expect("live entry");
        self.used -= entry.size;
        true
    }

    fn set_trace_sink(&mut self, sink: Option<SharedTraceSink>) {
        self.sink = sink;
    }

    fn trace_sink(&self) -> Option<&SharedTraceSink> {
        self.sink.as_ref()
    }

    fn eviction_event(&self, key: &K) -> Option<PolicyEvent> {
        let entry = self.arena.get(*self.map.get(key)?)?;
        Some(self.event_for(PolicyEventKind::Evict, entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(c: &mut GdWheel, key: u64, size: u64, cost: u64) -> (AccessOutcome, Vec<u64>) {
        let mut evicted = Vec::new();
        let out = c.reference(CacheRequest::new(key, size, cost), &mut evicted);
        (out, evicted)
    }

    #[test]
    fn cheap_pairs_evict_before_expensive() {
        let mut c = GdWheel::new(100);
        touch(&mut c, 1, 10, 10_000);
        for k in 2..40 {
            touch(&mut c, k, 10, 1);
        }
        assert!(c.contains(&1));
    }

    #[test]
    fn expensive_pairs_age_out_eventually() {
        let mut c = GdWheel::new(100);
        touch(&mut c, 999, 10, 2_000);
        let mut key = 1000;
        for _ in 0..100_000 {
            key += 1;
            touch(&mut c, key, 10, 1);
            if !c.contains(&999) {
                return;
            }
        }
        panic!("expensive pair never aged out under GD-Wheel");
    }

    #[test]
    fn migrations_happen_for_spread_priorities() {
        let mut c = GdWheel::new(200);
        // Priorities spanning several wheel levels force migrations as the
        // clock catches up.
        let mut key = 0u64;
        for round in 0..5_000u64 {
            key += 1;
            let cost = match round % 4 {
                0 => 1,
                1 => 300,
                2 => 70_000,
                _ => 20,
            };
            touch(&mut c, key, 10, cost);
        }
        assert!(c.migrations() > 0, "expected wheel migrations");
    }

    #[test]
    fn clock_is_non_decreasing() {
        let mut c = GdWheel::new(100);
        let mut last = 0;
        let mut state = 5u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            touch(&mut c, state % 50, 5 + state % 10, 1 + state % 1000);
            assert!(c.l_value() >= last);
            last = c.l_value();
        }
    }

    #[test]
    fn capacity_respected() {
        let mut c = GdWheel::new(73);
        let mut state = 5u64;
        for _ in 0..5_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            touch(&mut c, state % 40, 1 + state % 20, 1 + state % 100);
            assert!(c.used_bytes() <= 73);
        }
    }

    #[test]
    fn hit_refreshes_deadline() {
        let mut c = GdWheel::new(30);
        touch(&mut c, 1, 10, 5);
        touch(&mut c, 2, 10, 5);
        touch(&mut c, 3, 10, 5);
        // Refresh 1: it should now outlive 2.
        let (out, _) = touch(&mut c, 1, 10, 5);
        assert_eq!(out, AccessOutcome::Hit);
        let (_, ev) = touch(&mut c, 4, 10, 5);
        assert_eq!(ev, vec![2]);
        assert!(c.contains(&1));
    }

    #[test]
    fn touch_and_victim() {
        let mut c = GdWheel::new(30);
        touch(&mut c, 1, 10, 5);
        touch(&mut c, 2, 10, 5);
        touch(&mut c, 3, 10, 5);
        assert!(EvictionPolicy::touch(&mut c, &1));
        assert!(!EvictionPolicy::touch(&mut c, &9));
        // The victim matches the next actual eviction.
        let expected = EvictionPolicy::victim(&c);
        let (_, ev) = touch(&mut c, 4, 10, 5);
        assert_eq!(expected, ev.first().copied());
    }

    #[test]
    fn clock_does_not_saturate_on_long_high_cost_traces() {
        // Regression: with 32-bit wheels the clock saturated after a few
        // hundred expensive evictions, collapsing every priority into one
        // slot. With the full u64 space the wheel must keep discriminating
        // costs arbitrarily deep into the trace.
        let mut c = GdWheel::new(100);
        let mut key = 0u64;
        for _ in 0..20_000 {
            key += 1;
            touch(&mut c, key, 10, 10_000_000); // very expensive churn
        }
        assert!(
            c.l_value() < GdWheel::<u64>::MAX_PRIORITY / 2,
            "clock saturating: {}",
            c.l_value()
        );
        // Cost discrimination still works at this point.
        key += 1;
        let expensive = key;
        touch(&mut c, expensive, 10, 100_000_000_000);
        for _ in 0..50 {
            key += 1;
            touch(&mut c, key, 10, 1);
        }
        assert!(c.contains(&expensive), "late-trace cost blindness");
    }

    #[test]
    fn remove_works() {
        let mut c = GdWheel::new(30);
        touch(&mut c, 1, 10, 5);
        assert!(EvictionPolicy::remove(&mut c, &1));
        assert!(!EvictionPolicy::remove(&mut c, &1));
        assert_eq!(c.used_bytes(), 0);
    }
}
