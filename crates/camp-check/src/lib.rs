//! camp-check: a zero-dependency, deterministic, loom-style concurrency
//! model checker for the repo's lock-free core.
//!
//! The crate has two faces:
//!
//! * [`sync`] — a drop-in shim for the handful of `std::sync` primitives the
//!   workspace's lock-free structures use (`Atomic{U8,U32,U64,Usize,Bool}`,
//!   `Mutex`, `fence`, `thread::spawn`/`join`). In a normal build it
//!   re-exports `std::sync` types verbatim (pure type aliases — zero
//!   runtime overhead). Under `RUSTFLAGS='--cfg camp_check'` the same paths
//!   resolve to modeled types that route every operation through the
//!   cooperative scheduler in [`model`].
//! * [`model`] — the checker itself: virtual threads driven one operation at
//!   a time, exhaustive DFS over scheduling (and weak-memory read) choices,
//!   DPOR-style pruning keyed on conflicting accesses, a configurable
//!   preemption bound, a seeded-random sampling mode, and replayable
//!   counterexample traces. The model is always compiled, so checker
//!   self-tests run under plain `cargo test -p camp-check`; only the *shim
//!   switch* needs the cfg, which is what lets harnesses exercise the real
//!   production structures.
//!
//! The memory model is release/acquire with per-location store histories and
//! version-vector happens-before tracking (in the style of CDSChecker): a
//! relaxed load may legally observe stale stores, which is what makes
//! ordering mutations (e.g. a seqlock publish downgraded to `Relaxed`)
//! actually observable — a plain sequentially-consistent interleaver could
//! never catch them. See DESIGN.md §13 for the full sketch.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod model;
pub mod sync;

pub use model::api::{CheckOutcome, Checker, Failure};
