//! Quickstart: using a CAMP cache directly.
//!
//! Run with `cargo run --example quickstart`.

use camp::core::{Camp, Precision};

fn main() {
    // A 4 KiB cache with the paper's default precision (5 significant bits
    // of the cost-to-size ratio).
    let mut cache: Camp<String, Vec<u8>> = Camp::new(4096, Precision::Bits(5));

    // insert(key, value, size_in_bytes, cost). Costs are whatever unit your
    // application measures recomputation in (the paper uses RDBMS query
    // latency); sizes are bytes.
    cache.insert("user:1".into(), b"alice's profile".to_vec(), 1024, 3);
    cache.insert("user:2".into(), b"bob's profile".to_vec(), 1024, 3);
    cache.insert(
        "ads:model".into(),
        b"ML-derived ad targeting model".to_vec(),
        2048,
        50_000,
    );

    // Hits refresh both recency and priority.
    if let Some(profile) = cache.get("user:1") {
        println!("hit : user:1 -> {} bytes", profile.len());
    }

    // CAMP maintains one LRU queue per rounded cost-to-size ratio:
    println!("queues now: {}", cache.queue_count());
    for queue in cache.queue_census() {
        println!(
            "  ratio {:>8} : {} pair(s), head priority {}",
            queue.ratio, queue.len, queue.head_h
        );
    }

    // Fill the cache with cheap pairs; the expensive ad model survives
    // because evictions take the globally lowest H = L + cost/size.
    for i in 3..40 {
        cache.insert(format!("user:{i}"), vec![0u8; 16], 1024, 3);
    }
    println!(
        "after churn: ad model resident? {}  (used {} / {} bytes in {} pairs)",
        cache.contains("ads:model"),
        cache.used_bytes(),
        cache.capacity(),
        cache.len(),
    );

    // The next eviction victim is always inspectable:
    if let Some(victim) = cache.victim() {
        println!("next victim would be: {victim}");
    }

    let stats = cache.stats();
    println!(
        "stats: {} hits, {} misses, {} insertions, {} evictions",
        stats.hits, stats.misses, stats.insertions, stats.evictions
    );
    println!(
        "internals: L = {}, heap ops = {}, heap node visits = {}",
        cache.l_value(),
        cache.heap_update_ops(),
        cache.heap_node_visits()
    );
}
