//! A leveled, structured logger with `key=value` line output.
//!
//! One global level (an atomic, so checking it costs a relaxed load) gates
//! all output; lines go to stderr as `mono_ms=<ms_since_boot>
//! ts=<unix_secs> level=<level> event=<name> key=value ...` — grep-able,
//! machine-parsable, and ordered by the stderr lock. `mono_ms` counts
//! monotonic milliseconds since the first log line of the process, so log
//! lines correlate exactly with the flight recorder's span timestamps and
//! drain reports even when the wall clock steps. Use the
//! [`kvlog!`](crate::kvlog) macro:
//!
//! ```
//! use camp_telemetry::{kvlog, logger::LogLevel};
//!
//! camp_telemetry::set_level(LogLevel::Info);
//! kvlog!(LogLevel::Info, "server_start", addr = "127.0.0.1:11311", shards = 4);
//! kvlog!(LogLevel::Debug, "not_printed_at_info_level");
//! ```

use std::fmt;
use std::io::Write;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// Lifecycle events (start, listen, shutdown).
    Info = 3,
    /// Per-connection events.
    Debug = 4,
    /// Per-command events.
    Trace = 5,
}

impl LogLevel {
    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }

    /// Every accepted `--log-level` spelling, for CLI help text.
    pub const HELP: &'static str = "error | warn | info | debug | trace";
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rejected log-level spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown log level {:?} (expected {})",
            self.0,
            LogLevel::HELP
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for LogLevel {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            "trace" => Ok(LogLevel::Trace),
            _ => Err(ParseLevelError(s.to_owned())),
        }
    }
}

/// The global gate. Info by default: lifecycle lines, nothing per-request.
static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Sets the global log level.
pub fn set_level(level: LogLevel) {
    // ordering: Relaxed — an independent gate; a racing log line seeing
    // the old level is indistinguishable from logging just before the
    // change took effect.
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log level.
#[must_use]
pub fn level() -> LogLevel {
    // ordering: Relaxed — see `set_level`.
    match LEVEL.load(Ordering::Relaxed) {
        1 => LogLevel::Error,
        2 => LogLevel::Warn,
        3 => LogLevel::Info,
        4 => LogLevel::Debug,
        _ => LogLevel::Trace,
    }
}

/// Whether a message at `at` would currently be emitted.
#[must_use]
pub fn enabled(at: LogLevel) -> bool {
    // ordering: Relaxed — see `set_level`.
    (at as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Quotes `value` if it contains characters that would break key=value
/// parsing (spaces, quotes, `=`).
fn push_value(line: &mut String, value: &str) {
    if !value.is_empty() && !value.contains([' ', '"', '=', '\n']) {
        line.push_str(value);
        return;
    }
    line.push('"');
    for ch in value.chars() {
        match ch {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            other => line.push(other),
        }
    }
    line.push('"');
}

/// The process's logging epoch, pinned on first use. Monotonic, so the
/// `mono_ms` prefix never jumps backwards when the wall clock is stepped.
static BOOT: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();

/// Monotonic milliseconds since the first log line of this process.
#[must_use]
pub fn millis_since_boot() -> u64 {
    let boot = *BOOT.get_or_init(std::time::Instant::now);
    u64::try_from(boot.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Formats and writes one line. Called by [`kvlog!`](crate::kvlog) after
/// the level check; use the macro rather than calling this directly.
pub fn write_line(level: LogLevel, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    let mono_ms = millis_since_boot();
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut line = format!("mono_ms={mono_ms} ts={ts} level={level} event=");
    push_value(&mut line, event);
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        push_value(&mut line, &value.to_string());
    }
    line.push('\n');
    // One locked write keeps concurrent lines whole.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// Emits one structured log line if the global level allows it.
///
/// ```
/// use camp_telemetry::{kvlog, logger::LogLevel};
/// kvlog!(LogLevel::Warn, "slab_calcified", class = 7, victims = 34);
/// ```
#[macro_export]
macro_rules! kvlog {
    ($level:expr, $event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::logger::enabled($level) {
            $crate::logger::write_line(
                $level,
                $event,
                &[$((stringify!($key), &$value as &dyn ::std::fmt::Display)),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_round_trip() {
        for name in ["error", "warn", "info", "debug", "trace"] {
            let level: LogLevel = name.parse().unwrap();
            assert_eq!(level.to_string(), name);
        }
        assert_eq!("WARNING".parse::<LogLevel>(), Ok(LogLevel::Warn));
        assert!("loud".parse::<LogLevel>().is_err());
    }

    #[test]
    fn gate_respects_ordering() {
        // Tests share the global; restore what we found.
        let before = level();
        set_level(LogLevel::Warn);
        assert!(enabled(LogLevel::Error));
        assert!(enabled(LogLevel::Warn));
        assert!(!enabled(LogLevel::Info));
        assert!(!enabled(LogLevel::Trace));
        set_level(before);
    }

    #[test]
    fn values_with_spaces_are_quoted() {
        let mut line = String::new();
        push_value(&mut line, "plain");
        assert_eq!(line, "plain");
        line.clear();
        push_value(&mut line, "two words");
        assert_eq!(line, "\"two words\"");
        line.clear();
        push_value(&mut line, "a\"b\\c");
        assert_eq!(line, "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn monotonic_millis_never_go_backwards() {
        let a = millis_since_boot();
        let b = millis_since_boot();
        assert!(b >= a);
    }

    #[test]
    fn macro_accepts_mixed_field_types() {
        // Smoke: must compile and not panic at any level.
        kvlog!(LogLevel::Trace, "test_event", n = 42, s = "x y", f = 1.5);
        kvlog!(LogLevel::Error, "bare_event");
    }
}
