//! Trace analysis: the statistics that justify a synthetic trace.
//!
//! DESIGN.md's substitution argument rests on the generated traces having
//! the paper's stated shape — "approximately 70% of requests referencing
//! 20% of keys", per-key-stable sizes/costs, three (or a continuum of)
//! cost tiers. This module measures those properties on any [`Trace`], so
//! the claim is checkable rather than asserted, and so users feeding their
//! *own* trace files in can see what the algorithms will face.

use std::collections::HashMap;

use crate::trace::Trace;

/// Popularity skew measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SkewReport {
    /// Fraction of requests going to the most popular 20% of keys — the
    /// paper's headline skew statistic.
    pub top20_request_share: f64,
    /// Fraction of requests going to the most popular 1% of keys.
    pub top1_request_share: f64,
    /// Number of distinct keys.
    pub unique_keys: usize,
    /// Requests per key, averaged.
    pub mean_references_per_key: f64,
}

/// Cost-structure measurements.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CostReport {
    /// Number of distinct cost values.
    pub distinct_costs: usize,
    /// Smallest and largest cost.
    pub cost_range: (u64, u64),
    /// Share of the *total request cost* carried by each of the (up to 8)
    /// most expensive distinct cost values, descending.
    pub top_cost_shares: Vec<(u64, f64)>,
    /// Whether every key kept one cost for the whole trace (the paper's
    /// invariant).
    pub costs_stable_per_key: bool,
    /// Whether every key kept one size for the whole trace.
    pub sizes_stable_per_key: bool,
}

/// Reference-locality measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct LocalityReport {
    /// Median reuse distance (number of intervening requests between
    /// consecutive references to the same key), over re-references.
    pub median_reuse_distance: u64,
    /// 90th-percentile reuse distance.
    pub p90_reuse_distance: u64,
    /// Fraction of requests that are re-references (non-cold).
    pub rereference_share: f64,
}

/// Measures popularity skew.
///
/// # Examples
///
/// ```
/// use camp_workload::analysis::skew_report;
/// use camp_workload::BgConfig;
///
/// let trace = BgConfig::paper_scaled(5_000, 100_000, 1).generate();
/// let skew = skew_report(&trace);
/// // The paper's 70/20 configuration:
/// assert!((0.62..0.80).contains(&skew.top20_request_share));
/// ```
#[must_use]
pub fn skew_report(trace: &Trace) -> SkewReport {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for r in trace {
        *counts.entry(r.key).or_default() += 1;
    }
    let mut freqs: Vec<u64> = counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = freqs.iter().sum();
    let share = |fraction: f64| -> f64 {
        if freqs.is_empty() || total == 0 {
            return 0.0;
        }
        let take = ((freqs.len() as f64 * fraction).ceil() as usize).max(1);
        let top: u64 = freqs[..take.min(freqs.len())].iter().sum();
        top as f64 / total as f64
    };
    SkewReport {
        top20_request_share: share(0.20),
        top1_request_share: share(0.01),
        unique_keys: freqs.len(),
        mean_references_per_key: if freqs.is_empty() {
            0.0
        } else {
            total as f64 / freqs.len() as f64
        },
    }
}

/// Measures the cost structure and the per-key stability invariants.
#[must_use]
pub fn cost_report(trace: &Trace) -> CostReport {
    let mut cost_totals: HashMap<u64, u64> = HashMap::new();
    let mut per_key: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut costs_stable = true;
    let mut sizes_stable = true;
    let (mut min_cost, mut max_cost) = (u64::MAX, 0u64);
    for r in trace {
        *cost_totals.entry(r.cost).or_default() += r.cost;
        min_cost = min_cost.min(r.cost);
        max_cost = max_cost.max(r.cost);
        match per_key.get(&r.key) {
            Some(&(size, cost)) => {
                if cost != r.cost {
                    costs_stable = false;
                }
                if size != r.size {
                    sizes_stable = false;
                }
            }
            None => {
                per_key.insert(r.key, (r.size, r.cost));
            }
        }
    }
    let grand_total: u64 = cost_totals.values().sum();
    let mut shares: Vec<(u64, f64)> = cost_totals
        .iter()
        .map(|(&cost, &total)| (cost, total as f64 / grand_total.max(1) as f64))
        .collect();
    shares.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
    shares.truncate(8);
    CostReport {
        distinct_costs: cost_totals.len(),
        cost_range: if trace.is_empty() {
            (0, 0)
        } else {
            (min_cost, max_cost)
        },
        top_cost_shares: shares,
        costs_stable_per_key: costs_stable,
        sizes_stable_per_key: sizes_stable,
    }
}

/// Measures reuse distances (temporal locality).
#[must_use]
pub fn locality_report(trace: &Trace) -> LocalityReport {
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    let mut distances: Vec<u64> = Vec::new();
    for (i, r) in trace.iter().enumerate() {
        if let Some(&prev) = last_seen.get(&r.key) {
            distances.push((i - prev - 1) as u64);
        }
        last_seen.insert(r.key, i);
    }
    distances.sort_unstable();
    // Nearest-rank percentile: the smallest value with at least q of the
    // mass at or below it.
    let percentile = |q: f64| -> u64 {
        if distances.is_empty() {
            0
        } else {
            let rank = (q * distances.len() as f64).ceil() as usize;
            distances[rank.clamp(1, distances.len()) - 1]
        }
    };
    LocalityReport {
        median_reuse_distance: percentile(0.5),
        p90_reuse_distance: percentile(0.9),
        rereference_share: if trace.is_empty() {
            0.0
        } else {
            distances.len() as f64 / trace.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bg::BgConfig;
    use crate::trace::TraceRecord;

    #[test]
    fn paper_trace_matches_its_advertised_shape() {
        let trace = BgConfig::paper_scaled(10_000, 150_000, 7).generate();
        let skew = skew_report(&trace);
        assert!(
            (0.62..0.80).contains(&skew.top20_request_share),
            "70/20 skew off: {skew:?}"
        );
        let cost = cost_report(&trace);
        assert_eq!(cost.distinct_costs, 3);
        assert_eq!(cost.cost_range, (1, 10_000));
        assert!(cost.costs_stable_per_key);
        assert!(cost.sizes_stable_per_key);
        // The 10K tier dominates total cost (the property Pooled-LRU's
        // cost-proportional split exploits).
        assert_eq!(cost.top_cost_shares[0].0, 10_000);
        assert!(cost.top_cost_shares[0].1 > 0.9);
        let locality = locality_report(&trace);
        assert!(locality.rereference_share > 0.8);
        assert!(locality.median_reuse_distance < locality.p90_reuse_distance);
    }

    #[test]
    fn uniform_trace_has_no_skew() {
        let trace = BgConfig {
            skew: crate::bg::Skew::Uniform,
            ..BgConfig::paper_scaled(1_000, 50_000, 3)
        }
        .generate();
        let skew = skew_report(&trace);
        assert!(
            skew.top20_request_share < 0.30,
            "uniform trace showed skew: {skew:?}"
        );
    }

    #[test]
    fn instability_is_detected() {
        let trace = Trace::from_records(vec![
            TraceRecord::new(1, 10, 5),
            TraceRecord::new(1, 10, 9), // cost changed!
        ]);
        let cost = cost_report(&trace);
        assert!(!cost.costs_stable_per_key);
        assert!(cost.sizes_stable_per_key);
    }

    #[test]
    fn empty_trace_reports_are_zeroed() {
        let trace = Trace::default();
        assert_eq!(skew_report(&trace).unique_keys, 0);
        assert_eq!(cost_report(&trace).distinct_costs, 0);
        assert_eq!(locality_report(&trace).rereference_share, 0.0);
    }

    #[test]
    fn reuse_distance_computation() {
        // keys: a . . a -> distance 2; b b -> distance 0.
        let trace = Trace::from_records(vec![
            TraceRecord::new(1, 10, 1),
            TraceRecord::new(2, 10, 1),
            TraceRecord::new(2, 10, 1),
            TraceRecord::new(1, 10, 1),
        ]);
        let report = locality_report(&trace);
        assert_eq!(report.rereference_share, 0.5);
        assert_eq!(report.median_reuse_distance, 0);
        assert_eq!(report.p90_reuse_distance, 2);
    }
}
