//! 2Q (Johnson & Shasha, VLDB'94).
//!
//! The low-overhead scan-resistant policy from the paper's related work
//! (§5). 2Q admits first-time keys into a small FIFO probation queue
//! (`A1in`); only keys re-referenced *after* leaving probation — their key
//! is remembered in the ghost queue `A1out` — graduate into the main LRU
//! region (`Am`). One-timer scans therefore wash through `A1in` without
//! disturbing `Am`.
//!
//! This implementation generalizes the page-based original to byte
//! accounting: `A1in` is capped at `KIN` (default 25%) of the capacity and
//! `A1out` remembers up to `KOUT` (default 50%) of the capacity's worth of
//! evicted bytes, as recommended in the original paper.

use std::collections::{HashMap, VecDeque};

use camp_core::arena::{Arena, EntryId};
use camp_core::lru_list::{Linked, Links, LruList};

use crate::policy::{
    key_hash, AccessOutcome, CacheKey, CacheRequest, EvictionPolicy, PolicyEvent, PolicyEventKind,
    SharedTraceSink,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    A1In,
    Am,
}

impl Region {
    /// Queue index reported in trace events: 0 = probation, 1 = main.
    fn queue_index(self) -> u32 {
        match self {
            Region::A1In => 0,
            Region::Am => 1,
        }
    }
}

#[derive(Debug)]
struct Resident {
    size: u64,
    /// Retained for trace events only; 2Q ignores cost when evicting.
    cost: u64,
    region: Region,
    /// Arena handle of the Am list node, when region is Am.
    am_id: Option<EntryId>,
}

#[derive(Debug)]
struct AmNode<K> {
    key: K,
    links: Links,
}

impl<K> Linked for AmNode<K> {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// The 2Q replacement policy.
///
/// # Examples
///
/// ```
/// use camp_policies::{CacheRequest, EvictionPolicy, TwoQ};
///
/// let mut cache = TwoQ::new(100);
/// let mut evicted = Vec::new();
/// cache.reference(CacheRequest::new(1, 10, 0), &mut evicted);
/// assert!(cache.contains(&1)); // in probation (A1in)
/// ```
#[derive(Debug)]
pub struct TwoQ<K = u64> {
    capacity: u64,
    kin: u64,
    kout: u64,
    used: u64,
    a1in_bytes: u64,
    residents: HashMap<K, Resident>,
    a1in: VecDeque<K>,
    am: LruList,
    am_arena: Arena<AmNode<K>>,
    a1out: VecDeque<(K, u64)>, // (key, size)
    a1out_set: HashMap<K, u64>,
    a1out_bytes: u64,
    sink: Option<SharedTraceSink>,
}

impl<K: CacheKey> TwoQ<K> {
    /// Creates a 2Q cache with the recommended 25%/50% `Kin`/`Kout` split.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        TwoQ::with_thresholds(capacity, capacity / 4, capacity / 2)
    }

    /// Creates a 2Q cache with explicit probation (`kin`) and ghost
    /// (`kout`) byte thresholds.
    #[must_use]
    pub fn with_thresholds(capacity: u64, kin: u64, kout: u64) -> Self {
        TwoQ {
            capacity,
            kin,
            kout,
            used: 0,
            a1in_bytes: 0,
            residents: HashMap::new(),
            a1in: VecDeque::new(),
            am: LruList::new(),
            am_arena: Arena::new(),
            a1out: VecDeque::new(),
            a1out_set: HashMap::new(),
            a1out_bytes: 0,
            sink: None,
        }
    }

    /// Builds the trace event for a resident (queue 0 = A1in, 1 = Am).
    fn event_for(kind: PolicyEventKind, key: &K, resident: &Resident) -> PolicyEvent {
        PolicyEvent {
            kind,
            key_hash: key_hash(key),
            size: resident.size,
            cost: resident.cost,
            ratio: 0,
            queue: resident.region.queue_index(),
            l_value: 0,
        }
    }

    /// Bytes currently in the probation queue.
    #[must_use]
    pub fn a1in_bytes(&self) -> u64 {
        self.a1in_bytes
    }

    /// Number of keys remembered in the ghost queue.
    #[must_use]
    pub fn a1out_len(&self) -> usize {
        self.a1out_set.len()
    }

    fn push_ghost(&mut self, key: K, size: u64) {
        if self.a1out_set.insert(key.clone(), size).is_none() {
            self.a1out.push_back((key, size));
            self.a1out_bytes += size;
        }
        while self.a1out_bytes > self.kout {
            let Some((old, old_size)) = self.a1out.pop_front() else {
                break;
            };
            // Lazy deletion: only count entries still in the set.
            if self.a1out_set.remove(&old).is_some() {
                self.a1out_bytes -= old_size;
            }
        }
    }

    /// Whether the next reclaim drains the probation FIFO (the 2Q
    /// `reclaimfor` choice).
    fn reclaim_from_a1in(&self) -> bool {
        self.a1in_bytes > self.kin || self.am.is_empty()
    }

    /// Frees one resident entry, preferring the probation FIFO when it is
    /// over its threshold (the 2Q `reclaimfor` routine).
    fn reclaim_one(&mut self, evicted: &mut Vec<K>) -> bool {
        let key = if self.reclaim_from_a1in() {
            self.a1in.pop_front()
        } else {
            self.am
                .pop_front(&mut self.am_arena)
                .and_then(|id| self.am_arena.remove(id))
                .map(|node| node.key)
        };
        let Some(key) = key else { return false };
        let resident = self.residents.remove(&key).expect("queued key is resident");
        self.used -= resident.size;
        if let Some(sink) = &self.sink {
            sink.record(&Self::event_for(PolicyEventKind::Evict, &key, &resident));
        }
        if resident.region == Region::A1In {
            self.a1in_bytes -= resident.size;
            // Only probation evictions are remembered: a re-reference soon
            // after proves the key deserves Am.
            self.push_ghost(key.clone(), resident.size);
        }
        evicted.push(key);
        true
    }

    fn push_am(&mut self, key: K) -> EntryId {
        let id = self.am_arena.insert(AmNode {
            key,
            links: Links::new(),
        });
        self.am.push_back(&mut self.am_arena, id);
        id
    }

    fn on_hit(&mut self, key: &K) -> bool {
        let Some(resident) = self.residents.get(key) else {
            return false;
        };
        match resident.region {
            Region::Am => {
                // LRU refresh within Am, O(1) on the intrusive list.
                let id = resident.am_id.expect("Am resident has a node");
                self.am.move_to_back(&mut self.am_arena, id);
            }
            Region::A1In => {
                // The original 2Q leaves A1in references in place (FIFO).
            }
        }
        true
    }
}

impl<K: CacheKey> EvictionPolicy<K> for TwoQ<K> {
    fn name(&self) -> String {
        "2q".to_owned()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.residents.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.residents.contains_key(key)
    }

    fn reference(&mut self, req: CacheRequest<K>, evicted: &mut Vec<K>) -> AccessOutcome {
        assert!(req.size > 0, "key-value pairs have positive size");
        if self.on_hit(&req.key) {
            return AccessOutcome::Hit;
        }
        if req.size > self.capacity {
            return AccessOutcome::MissBypassed;
        }
        let remembered = self.a1out_set.remove(&req.key).is_some();
        while self.used + req.size > self.capacity {
            let ok = self.reclaim_one(evicted);
            debug_assert!(ok, "byte accounting out of sync");
        }
        let region = if remembered { Region::Am } else { Region::A1In };
        let am_id = match region {
            Region::Am => Some(self.push_am(req.key.clone())),
            Region::A1In => {
                self.a1in.push_back(req.key.clone());
                self.a1in_bytes += req.size;
                None
            }
        };
        let resident = Resident {
            size: req.size,
            cost: req.cost,
            region,
            am_id,
        };
        if let Some(sink) = &self.sink {
            sink.record(&Self::event_for(
                PolicyEventKind::Admit,
                &req.key,
                &resident,
            ));
        }
        self.residents.insert(req.key, resident);
        self.used += req.size;
        AccessOutcome::MissInserted
    }

    fn touch(&mut self, key: &K) -> bool {
        self.on_hit(key)
    }

    fn victim(&self) -> Option<K> {
        if self.reclaim_from_a1in() {
            if let Some(key) = self.a1in.front() {
                return Some(key.clone());
            }
        }
        self.am
            .front()
            .and_then(|id| self.am_arena.get(id))
            .map(|node| node.key.clone())
            .or_else(|| self.a1in.front().cloned())
    }

    fn remove(&mut self, key: &K) -> bool {
        let Some(resident) = self.residents.remove(key) else {
            return false;
        };
        self.used -= resident.size;
        match resident.region {
            Region::Am => {
                let id = resident.am_id.expect("Am resident has a node");
                self.am.unlink(&mut self.am_arena, id);
                self.am_arena.remove(id);
            }
            Region::A1In => {
                if let Some(pos) = self.a1in.iter().position(|k| k == key) {
                    self.a1in.remove(pos);
                }
                self.a1in_bytes -= resident.size;
            }
        }
        true
    }

    fn set_trace_sink(&mut self, sink: Option<SharedTraceSink>) {
        self.sink = sink;
    }

    fn trace_sink(&self) -> Option<&SharedTraceSink> {
        self.sink.as_ref()
    }

    fn eviction_event(&self, key: &K) -> Option<PolicyEvent> {
        let resident = self.residents.get(key)?;
        Some(Self::event_for(PolicyEventKind::Evict, key, resident))
    }

    fn queue_count(&self) -> Option<usize> {
        Some(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(c: &mut TwoQ, key: u64) -> (AccessOutcome, Vec<u64>) {
        let mut evicted = Vec::new();
        let out = c.reference(CacheRequest::new(key, 10, 0), &mut evicted);
        (out, evicted)
    }

    #[test]
    fn first_timers_enter_probation() {
        let mut c = TwoQ::new(100);
        touch(&mut c, 1);
        assert!(c.contains(&1));
        assert_eq!(c.a1in_bytes(), 10);
    }

    #[test]
    fn ghost_re_reference_promotes_to_am() {
        let mut c = TwoQ::with_thresholds(40, 10, 40);
        touch(&mut c, 1);
        // Push 1 out of the small probation region.
        touch(&mut c, 2);
        touch(&mut c, 3);
        touch(&mut c, 4);
        touch(&mut c, 5);
        assert!(!c.contains(&1), "1 should have left probation");
        assert!(c.a1out_len() > 0);
        // Re-reference: 1 is remembered and admitted straight into Am.
        let (out, _) = touch(&mut c, 1);
        assert_eq!(out, AccessOutcome::MissInserted);
        // A following scan of one-timers cannot push 1 out while probation
        // is over threshold.
        for k in 10..14 {
            touch(&mut c, k);
        }
        assert!(c.contains(&1), "Am member displaced by scan");
    }

    #[test]
    fn scans_wash_through_probation() {
        let mut c = TwoQ::with_thresholds(100, 25, 50);
        // Build a hot Am set.
        for k in [1u64, 2] {
            touch(&mut c, k);
        }
        for _ in 0..3 {
            for k in 0..10u64 {
                touch(&mut c, 100 + k);
            }
        }
        // Promote 1 and 2 via ghost hits.
        touch(&mut c, 1);
        touch(&mut c, 2);
        // Long one-timer scan.
        for k in 0..40u64 {
            touch(&mut c, 1000 + k);
        }
        assert!(
            c.contains(&1) && c.contains(&2),
            "scan displaced the hot set"
        );
    }

    #[test]
    fn capacity_respected() {
        let mut c = TwoQ::new(55);
        for k in 0..50 {
            touch(&mut c, k);
            assert!(c.used_bytes() <= 55);
        }
    }

    #[test]
    fn victim_matches_next_reclaim() {
        let mut c = TwoQ::with_thresholds(40, 10, 40);
        for k in 1..=4 {
            touch(&mut c, k);
        }
        // The cache is full and probation is over its 10-byte threshold;
        // the probation FIFO head is the advertised and actual victim.
        let expected = EvictionPolicy::victim(&c);
        assert_eq!(expected, Some(1));
        let (_, ev) = touch(&mut c, 5);
        assert_eq!(expected, ev.first().copied());
    }

    #[test]
    fn remove_from_both_regions() {
        let mut c = TwoQ::with_thresholds(60, 20, 40);
        touch(&mut c, 1);
        assert!(EvictionPolicy::remove(&mut c, &1));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.a1in_bytes(), 0);
        assert!(!EvictionPolicy::remove(&mut c, &1));
    }

    #[test]
    fn oversized_bypasses() {
        let mut c = TwoQ::new(50);
        let mut ev = Vec::new();
        let out = c.reference(CacheRequest::new(1, 51, 0), &mut ev);
        assert_eq!(out, AccessOutcome::MissBypassed);
        assert!(c.is_empty());
    }
}
