//! Modeled `Mutex`. Like the atomics, it wraps the `std` mutex it shims:
//! outside an execution `lock()` is just `std::sync::Mutex::lock` (with the
//! guard re-wrapped so the type is uniform); inside an execution the
//! acquisition is a blocking scheduling point — the controller will not
//! grant the step while another vthread holds the mutex — and once granted
//! the inner `std` lock is taken uncontended.

use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError};

use crate::model::exec;
use crate::model::kernel::Op;

#[derive(Debug, Default)]
pub struct Mutex<T> {
    std: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// `Some(addr)` when the acquisition went through the model and the
    /// release must be scheduled too.
    model_addr: Option<usize>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            std: std::sync::Mutex::new(t),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match exec::current() {
            Some(h) => {
                exec::schedule_op(&h, Op::Lock { addr: self.addr() });
                // The model granted us the mutex, so the std lock must be
                // free; recover poison (a previous execution's failing
                // vthread may have poisoned it while unwinding).
                let guard = match self.std.try_lock() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("model granted a std-held mutex")
                    }
                };
                Ok(MutexGuard {
                    inner: Some(guard),
                    model_addr: Some(self.addr()),
                })
            }
            None => match self.std.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model_addr: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    model_addr: None,
                })),
            },
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.std.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.std.get_mut()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock first, then schedule the model release; the
        // strict alternation means nobody can touch the std lock until the
        // model unlock is granted anyway.
        self.inner.take();
        if let Some(addr) = self.model_addr {
            exec::schedule_on_current(Op::Unlock { addr });
        }
    }
}
