//! Schedule exploration: the persistent choice stack driving DFS, DPOR
//! backtrack sets, the preemption bound, seeded sampling, and the textual
//! trace format counterexamples are replayed from.
//!
//! An execution is fully determined by the sequence of *choices* made while
//! running it: which enabled virtual thread steps next, and (for relaxed
//! loads with several legal candidate stores) which store a load observes.
//! DFS keeps a stack of choice nodes; after each execution [`Search::advance`]
//! flips the deepest node with an untried alternative and the next execution
//! replays the shared prefix deterministically.

use crate::model::rng::SplitMix64;

pub(crate) type Tid = usize;

/// One recorded decision. `Thread(t)` = virtual thread `t` was granted the
/// next step; `Read(i)` = a load observed candidate store `i` (an index into
/// the legal-candidate list, `0` = oldest candidate, last = newest).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Choice {
    Thread(Tid),
    Read(usize),
}

/// Render a choice sequence in the replayable `T0 T2 R1 ...` form.
pub(crate) fn format_trace(choices: &[Choice]) -> String {
    let mut out = String::new();
    for (i, c) in choices.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match c {
            Choice::Thread(t) => {
                out.push('T');
                out.push_str(&t.to_string());
            }
            Choice::Read(r) => {
                out.push('R');
                out.push_str(&r.to_string());
            }
        }
    }
    out
}

/// Parse the `T0 T2 R1 ...` form back into a choice sequence.
pub(crate) fn parse_trace(s: &str) -> Result<Vec<Choice>, String> {
    let mut out = Vec::new();
    for tok in s.split_whitespace() {
        let (kind, num) = tok.split_at(1);
        let n: usize = num
            .parse()
            .map_err(|_| format!("bad trace token {tok:?}"))?;
        match kind {
            "T" => out.push(Choice::Thread(n)),
            "R" => out.push(Choice::Read(n)),
            _ => return Err(format!("bad trace token {tok:?}")),
        }
    }
    Ok(out)
}

/// A scheduling decision point: some virtual threads were enabled and one
/// was chosen. `backtrack` is the DPOR persistent set — alternatives proven
/// (via a conflicting later access) to possibly lead elsewhere. Without DPOR
/// it starts as the full enabled set.
#[derive(Debug)]
struct ThreadNode {
    enabled: Vec<Tid>,
    chosen: Tid,
    tried: Vec<Tid>,
    backtrack: Vec<Tid>,
    /// Preemption count on the path *before* this decision.
    pre_preemptions: u32,
    /// Which thread was running before this decision (for preemption cost).
    prev_running: Option<Tid>,
}

/// A weak-memory read decision point: a load had several legal candidate
/// stores. Reads are always explored exhaustively (they are the whole point
/// of modeling release/acquire).
#[derive(Debug)]
struct ReadNode {
    chosen: usize,
    untried: Vec<usize>,
}

#[derive(Debug)]
enum Node {
    Thread(ThreadNode),
    Read(ReadNode),
}

#[derive(Debug)]
pub(crate) enum Mode {
    /// Exhaustive depth-first search over the choice tree.
    Dfs,
    /// `total` independent schedules drawn from a seeded PRNG.
    Sample {
        seed: u64,
        total: u64,
        index: u64,
        rng: SplitMix64,
    },
    /// Deterministically re-run one recorded choice sequence.
    Replay { choices: Vec<Choice>, at: usize },
}

impl Mode {
    pub(crate) fn sample(seed: u64, total: u64) -> Self {
        Mode::Sample {
            seed,
            total,
            index: 0,
            rng: SplitMix64::new(seed),
        }
    }
}

#[derive(Debug)]
pub(crate) struct Search {
    mode: Mode,
    dpor: bool,
    preemption_bound: Option<u32>,
    nodes: Vec<Node>,
    cursor: usize,
    /// Executions started so far (the first one counts).
    pub(crate) schedules: u64,
    /// Every choice made in the current execution, including forced
    /// (singleton) ones, so a failing execution replays verbatim.
    pub(crate) current_trace: Vec<Choice>,
    prev_running: Option<Tid>,
    preemptions: u32,
    /// Index of the `ThreadNode` that granted the current step, if that
    /// decision had alternatives. DPOR hangs backtrack entries off this.
    pub(crate) last_thread_node: Option<usize>,
}

impl Search {
    pub(crate) fn new(mode: Mode, dpor: bool, preemption_bound: Option<u32>) -> Self {
        Self {
            mode,
            dpor,
            preemption_bound,
            nodes: Vec::new(),
            cursor: 0,
            schedules: 1,
            current_trace: Vec::new(),
            prev_running: None,
            preemptions: 0,
            last_thread_node: None,
        }
    }

    /// DPOR is only meaningful (and only applied) during DFS exploration.
    pub(crate) fn dpor_active(&self) -> bool {
        self.dpor && matches!(self.mode, Mode::Dfs)
    }

    fn preemption_cost(prev: Option<Tid>, chosen: Tid, enabled: &[Tid]) -> u32 {
        match prev {
            // Switching away from a thread that could have kept running is a
            // preemption; switching because the previous thread blocked or
            // finished is free (and so is the very first grant).
            Some(p) if p != chosen && enabled.contains(&p) => 1,
            _ => 0,
        }
    }

    /// Pick which enabled thread steps next.
    pub(crate) fn decide_thread(&mut self, enabled: &[Tid]) -> Result<Tid, String> {
        debug_assert!(!enabled.is_empty());
        self.last_thread_node = None;
        let chosen = match &mut self.mode {
            Mode::Replay { choices, at } => {
                let c = choices.get(*at).copied();
                *at += 1;
                match c {
                    Some(Choice::Thread(t)) if enabled.contains(&t) => t,
                    other => {
                        return Err(format!(
                            "replay diverged: expected one of {enabled:?}, trace had {other:?}"
                        ))
                    }
                }
            }
            Mode::Sample { rng, .. } => {
                if enabled.len() == 1 {
                    enabled[0]
                } else {
                    enabled[rng.below(enabled.len())]
                }
            }
            Mode::Dfs => {
                if enabled.len() == 1 {
                    enabled[0]
                } else if self.cursor < self.nodes.len() {
                    // Replaying the shared prefix of the previous execution.
                    let idx = self.cursor;
                    match &self.nodes[idx] {
                        Node::Thread(t) => {
                            debug_assert_eq!(t.enabled, enabled, "nondeterministic replay");
                            self.last_thread_node = Some(idx);
                            self.cursor += 1;
                            t.chosen
                        }
                        Node::Read(_) => {
                            return Err("replay diverged: read node where thread choice expected"
                                .to_string())
                        }
                    }
                } else {
                    let default = match self.prev_running {
                        Some(p) if enabled.contains(&p) => p,
                        _ => enabled[0],
                    };
                    let backtrack = if self.dpor {
                        vec![default]
                    } else {
                        enabled.to_vec()
                    };
                    self.nodes.push(Node::Thread(ThreadNode {
                        enabled: enabled.to_vec(),
                        chosen: default,
                        tried: vec![default],
                        backtrack,
                        pre_preemptions: self.preemptions,
                        prev_running: self.prev_running,
                    }));
                    self.last_thread_node = Some(self.nodes.len() - 1);
                    self.cursor += 1;
                    default
                }
            }
        };
        self.preemptions += Self::preemption_cost(self.prev_running, chosen, enabled);
        self.prev_running = Some(chosen);
        self.current_trace.push(Choice::Thread(chosen));
        Ok(chosen)
    }

    /// Pick which candidate store a load observes (`candidates >= 1`;
    /// returns an index in `0..candidates`, default = newest).
    pub(crate) fn decide_read(&mut self, candidates: usize) -> Result<usize, String> {
        debug_assert!(candidates >= 1);
        let chosen = match &mut self.mode {
            Mode::Replay { choices, at } => {
                let c = choices.get(*at).copied();
                *at += 1;
                match c {
                    Some(Choice::Read(r)) if r < candidates => r,
                    other => {
                        return Err(format!(
                        "replay diverged: expected read choice < {candidates}, trace had {other:?}"
                    ))
                    }
                }
            }
            Mode::Sample { rng, .. } => {
                if candidates == 1 {
                    0
                } else {
                    rng.below(candidates)
                }
            }
            Mode::Dfs => {
                if candidates == 1 {
                    0
                } else if self.cursor < self.nodes.len() {
                    let idx = self.cursor;
                    match &self.nodes[idx] {
                        Node::Read(r) => {
                            self.cursor += 1;
                            r.chosen
                        }
                        Node::Thread(_) => {
                            return Err("replay diverged: thread node where read choice expected"
                                .to_string())
                        }
                    }
                } else {
                    let default = candidates - 1;
                    self.nodes.push(Node::Read(ReadNode {
                        chosen: default,
                        untried: (0..default).collect(),
                    }));
                    self.cursor += 1;
                    default
                }
            }
        };
        self.current_trace.push(Choice::Read(chosen));
        Ok(chosen)
    }

    /// DPOR hook: a step by `me` conflicted with an earlier step taken at
    /// choice node `node_idx`; make sure that node will also explore `me`
    /// (or, if `me` was not enabled there, everything that was).
    pub(crate) fn add_backtrack(&mut self, node_idx: usize, me: Tid) {
        if let Node::Thread(t) = &mut self.nodes[node_idx] {
            if t.backtrack.contains(&me) {
                return;
            }
            if t.enabled.contains(&me) {
                t.backtrack.push(me);
            } else {
                for e in t.enabled.clone() {
                    if !t.backtrack.contains(&e) {
                        t.backtrack.push(e);
                    }
                }
            }
        }
    }

    /// Prepare the next execution. Returns false when the search space (or
    /// sampling budget) is exhausted.
    pub(crate) fn advance(&mut self) -> bool {
        let has_next = match &mut self.mode {
            Mode::Replay { .. } => false,
            Mode::Sample {
                seed,
                total,
                index,
                rng,
            } => {
                *index += 1;
                if *index >= *total {
                    false
                } else {
                    *rng = SplitMix64::new(
                        seed.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    );
                    true
                }
            }
            Mode::Dfs => {
                let bound = self.preemption_bound;
                let mut found = false;
                while let Some(node) = self.nodes.last_mut() {
                    match node {
                        Node::Read(r) => {
                            if let Some(next) = r.untried.pop() {
                                r.chosen = next;
                                found = true;
                                break;
                            }
                        }
                        Node::Thread(t) => {
                            let mut picked = None;
                            loop {
                                let cand =
                                    t.backtrack.iter().copied().find(|c| !t.tried.contains(c));
                                let Some(c) = cand else { break };
                                t.tried.push(c);
                                let cost = Self::preemption_cost(t.prev_running, c, &t.enabled);
                                if bound.is_none_or(|b| t.pre_preemptions + cost <= b) {
                                    picked = Some(c);
                                    break;
                                }
                            }
                            if let Some(c) = picked {
                                t.chosen = c;
                                found = true;
                                break;
                            }
                        }
                    }
                    self.nodes.pop();
                }
                found
            }
        };
        if has_next {
            self.cursor = 0;
            self.current_trace.clear();
            self.prev_running = None;
            self.preemptions = 0;
            self.last_thread_node = None;
            self.schedules += 1;
        }
        has_next
    }
}

#[cfg(test)]
mod tests {
    use super::{format_trace, parse_trace, Choice};

    #[test]
    fn trace_round_trips() {
        let choices = vec![
            Choice::Thread(0),
            Choice::Thread(12),
            Choice::Read(1),
            Choice::Read(0),
            Choice::Thread(3),
        ];
        let s = format_trace(&choices);
        assert_eq!(s, "T0 T12 R1 R0 T3");
        assert_eq!(parse_trace(&s).expect("parse"), choices);
        assert!(parse_trace("T0 X9").is_err());
        assert!(parse_trace("Tx").is_err());
    }
}
