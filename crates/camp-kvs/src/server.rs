//! The TCP server: a Twemcache-like KVS speaking the text protocol.
//!
//! One thread per connection over a shared, hash-partitioned
//! [`ShardedStore`]. [`Server::start`] uses a single shard (one lock, the
//! stock-Twemcache arrangement); [`Server::start_sharded`] partitions keys
//! over independently locked shards — the paper's §4.1 vertical-scaling
//! recipe, where threads touching different partitions never contend.
//!
//! The IQ framework's cost computation lives here: `iqget` misses record a
//! timestamp, and a later `iqset` for the same key uses the elapsed
//! microseconds as the pair's cost — "the difference between these two
//! timestamps is used as the cost of the key-value pair" (§4) — unless the
//! client supplied an explicit cost hint. The miss registry is striped with
//! the same hash the store uses for sharding, so `iqget`/`iqset` traffic on
//! different shards never contends on a single registry lock.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{parse_command, Command, SetHeader, SetVerb};
use crate::shard::ShardedStore;
use crate::store::{StoreConfig, StoreError, StoreStats};
use crate::sync::lock;

/// How long an unmatched `iqget` miss is remembered. A client that never
/// issues the paired `iqset` (crashed, gave up) would otherwise leak its
/// registry entry forever; the sweep drops entries past this age.
const IQ_MISS_TTL: Duration = Duration::from_secs(120);

/// One lock-striped partition of the IQ miss registry.
#[derive(Debug)]
struct IqStripe {
    misses: HashMap<Vec<u8>, Instant>,
    last_sweep: Instant,
}

/// IQ miss registry: key -> time of the `iqget` miss, partitioned into one
/// stripe per store shard (indexed by [`ShardedStore::shard_index`], so a
/// key's registry stripe and store shard are guarded by different locks but
/// partition identically).
#[derive(Debug)]
struct IqRegistry {
    stripes: Vec<Mutex<IqStripe>>,
}

impl IqRegistry {
    fn new(stripes: usize) -> IqRegistry {
        IqRegistry {
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::new(IqStripe {
                        misses: HashMap::new(),
                        last_sweep: Instant::now(),
                    })
                })
                .collect(),
        }
    }

    /// Records a miss timestamp, sweeping the stripe's expired entries at
    /// most once per TTL period (amortized O(1) per record).
    fn record_miss(&self, stripe: usize, key: Vec<u8>) {
        let mut guard = lock(&self.stripes[stripe]);
        let now = Instant::now();
        if now.duration_since(guard.last_sweep) >= IQ_MISS_TTL {
            guard
                .misses
                .retain(|_, started| now.duration_since(*started) < IQ_MISS_TTL);
            guard.last_sweep = now;
        }
        guard.misses.insert(key, now);
    }

    /// Consumes the registered miss time for `key`, if any and not expired.
    fn take(&self, stripe: usize, key: &[u8]) -> Option<Instant> {
        lock(&self.stripes[stripe])
            .misses
            .remove(key)
            .filter(|started| started.elapsed() < IQ_MISS_TTL)
    }

    fn discard(&self, stripe: usize, key: &[u8]) {
        lock(&self.stripes[stripe]).misses.remove(key);
    }

    fn clear(&self) {
        for stripe in &self.stripes {
            lock(stripe).misses.clear();
        }
    }
}

/// Shared server state.
#[derive(Debug)]
struct Shared {
    store: ShardedStore,
    iq_misses: IqRegistry,
    shutdown: AtomicBool,
}

impl Shared {
    /// The registry stripe for `key` — same hash partition as the store.
    fn iq_stripe(&self, key: &[u8]) -> usize {
        self.store.shard_index(key)
    }
}

/// A running KVS server.
///
/// # Examples
///
/// ```no_run
/// use camp_kvs::server::Server;
/// use camp_kvs::store::StoreConfig;
///
/// let server = Server::start("127.0.0.1:0", StoreConfig::camp_with_memory(16 << 20))?;
/// println!("listening on {}", server.local_addr());
/// server.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn start(addr: &str, config: StoreConfig) -> io::Result<Server> {
        Server::start_sharded(addr, config, 1)
    }

    /// Like [`Server::start`], with the store hash-partitioned over
    /// `shards` independently locked shards (the §4.1 scaling recipe).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn start_sharded(addr: &str, config: StoreConfig, shards: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store: ShardedStore::new(config, shards),
            iq_misses: IqRegistry::new(shards),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("camp-kvs-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the store counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.shared.store.stats()
    }

    /// Number of live items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.store.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops accepting connections and joins the accept thread. Existing
    /// connections end when their clients disconnect.
    pub fn shutdown(mut self) {
        self.signal_shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    fn signal_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.local_addr);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.signal_shutdown();
            if let Some(handle) = self.accept_thread.take() {
                let _ = handle.join();
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let conn_shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("camp-kvs-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &conn_shared);
                    });
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = Vec::new();
    loop {
        line.clear();
        let read = reader.read_until(b'\n', &mut line)?;
        if read == 0 {
            return Ok(()); // client closed
        }
        while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            line.pop();
        }
        if line.is_empty() {
            continue;
        }
        match parse_command(&line) {
            Ok(Command::Quit) => return Ok(()),
            Ok(command) => {
                if !execute(command, &mut reader, &mut writer, shared)? {
                    return Ok(());
                }
            }
            Err(err) => {
                writeln_crlf(&mut writer, &err.to_string())?;
                writer.flush()?;
            }
        }
    }
}

/// Executes one command; returns false when the connection should close.
fn execute<R: Read, W: Write>(
    command: Command,
    reader: &mut BufReader<R>,
    writer: &mut BufWriter<W>,
    shared: &Arc<Shared>,
) -> io::Result<bool> {
    match command {
        Command::Get { keys } => {
            for key in keys {
                let hit = shared.store.get(&key);
                if let Some(result) = hit {
                    write_value(writer, &key, &result.value, result.flags)?;
                }
            }
            writeln_crlf(writer, "END")?;
        }
        Command::IqGet { key } => {
            let hit = shared.store.get(&key);
            match hit {
                Some(result) => {
                    write_value(writer, &key, &result.value, result.flags)?;
                }
                None => {
                    // Register the miss time for the cost computation.
                    shared
                        .iq_misses
                        .record_miss(shared.iq_stripe(&key), key.clone());
                }
            }
            writeln_crlf(writer, "END")?;
        }
        Command::Set { header } => {
            let data = read_data_block(reader, header.bytes)?;
            let response = apply_set(&header, &data, shared);
            writeln_crlf(writer, response)?;
        }
        Command::Delete { key } => {
            let deleted = shared.store.delete(&key);
            writeln_crlf(writer, if deleted { "DELETED" } else { "NOT_FOUND" })?;
        }
        Command::Arith { key, delta, up } => {
            let result = if up {
                shared.store.incr(&key, delta)
            } else {
                shared.store.decr(&key, delta)
            };
            match result {
                Some(value) => writeln_crlf(writer, &value.to_string())?,
                None => writeln_crlf(writer, "NOT_FOUND")?,
            }
        }
        Command::Touch { key, exptime } => {
            let touched = shared.store.touch(&key, expiry_to_absolute(exptime));
            writeln_crlf(writer, if touched { "TOUCHED" } else { "NOT_FOUND" })?;
        }
        Command::FlushAll => {
            shared.store.flush_all();
            shared.iq_misses.clear();
            writeln_crlf(writer, "OK")?;
        }
        Command::Version => {
            writeln_crlf(
                writer,
                concat!("VERSION camp-kvs/", env!("CARGO_PKG_VERSION")),
            )?;
        }
        Command::Stats => {
            let (stats, len, census) = (
                shared.store.stats(),
                shared.store.len(),
                shared.store.slab_census(),
            );
            let policy_names = shared.store.policy_names();
            if let Some(name) = policy_names.first() {
                writeln_crlf(writer, &format!("STAT policy {name}"))?;
            }
            writeln_crlf(
                writer,
                &format!("STAT shards {}", shared.store.shard_count()),
            )?;
            for (i, name) in policy_names.iter().enumerate() {
                writeln_crlf(writer, &format!("STAT shard:{i}:policy {name}"))?;
            }
            writeln_crlf(writer, &format!("STAT curr_items {len}"))?;
            writeln_crlf(writer, &format!("STAT get_hits {}", stats.get_hits))?;
            writeln_crlf(writer, &format!("STAT get_misses {}", stats.get_misses))?;
            writeln_crlf(writer, &format!("STAT cmd_set {}", stats.sets))?;
            writeln_crlf(writer, &format!("STAT evictions {}", stats.evictions))?;
            writeln_crlf(
                writer,
                &format!("STAT slab_reassignments {}", stats.slab_reassignments),
            )?;
            writeln_crlf(
                writer,
                &format!("STAT slab_reclaims {}", stats.slab_reclaims),
            )?;
            writeln_crlf(writer, &format!("STAT expired {}", stats.expired))?;
            for (chunk_size, slabs, items) in census {
                if slabs > 0 {
                    writeln_crlf(
                        writer,
                        &format!("STAT slab_class:{chunk_size} slabs={slabs} items={items}"),
                    )?;
                }
            }
            writeln_crlf(writer, "END")?;
        }
        Command::Quit => return Ok(false),
    }
    writer.flush()?;
    Ok(true)
}

fn apply_set(header: &SetHeader, data: &[u8], shared: &Arc<Shared>) -> &'static str {
    let iq = header.verb == SetVerb::IqSet;
    // Cost: explicit hint, else the IQ registry's elapsed time, else 0.
    let cost = match header.cost_hint {
        Some(hint) => hint,
        None if iq => {
            let started = shared
                .iq_misses
                .take(shared.iq_stripe(&header.key), &header.key);
            started
                .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
                .unwrap_or(0)
        }
        None => 0,
    };
    if iq && header.cost_hint.is_some() {
        // The hint supersedes the registry entry.
        shared
            .iq_misses
            .discard(shared.iq_stripe(&header.key), &header.key);
    }
    let expires_at = expiry_to_absolute(header.exptime);
    let result = match header.verb {
        SetVerb::Set | SetVerb::IqSet => shared
            .store
            .set(&header.key, data, header.flags, expires_at, cost)
            .map(|()| true),
        SetVerb::Add => shared
            .store
            .add(&header.key, data, header.flags, expires_at, cost),
        SetVerb::Replace => shared
            .store
            .replace(&header.key, data, header.flags, expires_at, cost),
    };
    match result {
        Ok(true) => "STORED",
        Ok(false) => "NOT_STORED",
        Err(StoreError::ValueTooLarge { .. }) => "SERVER_ERROR object too large for cache",
        Err(StoreError::OutOfMemory) => "SERVER_ERROR out of memory storing object",
    }
}

/// Memcached expiry semantics: 0 = never; values up to 30 days are
/// relative seconds; larger values are absolute unix timestamps.
fn expiry_to_absolute(exptime: u64) -> u64 {
    const THIRTY_DAYS: u64 = 60 * 60 * 24 * 30;
    if exptime == 0 {
        0
    } else if exptime <= THIRTY_DAYS {
        unix_now() + exptime
    } else {
        exptime
    }
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn read_data_block<R: Read>(reader: &mut BufReader<R>, bytes: usize) -> io::Result<Vec<u8>> {
    let mut data = vec![0u8; bytes];
    reader.read_exact(&mut data)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "data block not terminated by CRLF",
        ));
    }
    Ok(data)
}

fn write_value<W: Write>(
    writer: &mut BufWriter<W>,
    key: &[u8],
    value: &[u8],
    flags: u32,
) -> io::Result<()> {
    writer.write_all(b"VALUE ")?;
    writer.write_all(key)?;
    write!(writer, " {flags} {}\r\n", value.len())?;
    writer.write_all(value)?;
    writer.write_all(b"\r\n")
}

fn writeln_crlf<W: Write>(writer: &mut W, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::SlabConfig;
    use crate::store::EvictionMode;
    use camp_core::Precision;

    fn test_server() -> Server {
        Server::start(
            "127.0.0.1:0",
            StoreConfig {
                slab: SlabConfig::small(16 * 1024, 8),
                eviction: EvictionMode::Camp(Precision::Bits(5)),
            },
        )
        .expect("bind test server")
    }

    #[test]
    fn expiry_semantics() {
        assert_eq!(expiry_to_absolute(0), 0);
        let relative = expiry_to_absolute(60);
        assert!(relative > unix_now() + 50 && relative <= unix_now() + 61);
        assert_eq!(expiry_to_absolute(4_000_000_000), 4_000_000_000);
    }

    #[test]
    fn starts_and_shuts_down_cleanly() {
        let server = test_server();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        server.shutdown();
        // After shutdown the port stops accepting new work (either refused
        // outright or closed immediately after accept).
    }

    #[test]
    fn raw_socket_session() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"set hello 5 0 5\r\nworld\r\nget hello\r\nquit\r\n")
            .unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8_lossy(&response);
        assert!(text.contains("STORED"), "{text}");
        assert!(text.contains("VALUE hello 5 5"), "{text}");
        assert!(text.contains("world"), "{text}");
        assert!(text.contains("END"), "{text}");
        server.shutdown();
    }

    #[test]
    fn malformed_command_gets_client_error() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"bogus\r\nquit\r\n").unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        assert!(String::from_utf8_lossy(&response).contains("CLIENT_ERROR"));
        server.shutdown();
    }
}
