//! Property-based tests for camp-core's data structures and invariants.

use camp_core::arena::Arena;
use camp_core::heap::DaryHeap;
use camp_core::lru_list::{Linked, Links, LruList};
use camp_core::rounding::{round_to_significant_bits, Precision, RatioRounder};
use camp_core::{Camp, InsertOutcome};
use proptest::prelude::*;

// ---------------------------------------------------------------- rounding

proptest! {
    /// Rounding never increases a value and never changes its magnitude.
    #[test]
    fn rounding_keeps_value_in_half_open_band(x in 1u64.., p in 1u32..=16) {
        let r = round_to_significant_bits(x, p);
        prop_assert!(r <= x);
        // Same highest bit: r is within a factor of two of x.
        prop_assert_eq!(64 - r.leading_zeros(), 64 - x.leading_zeros());
    }

    /// Proposition 3: x <= (1 + 2^{-p+1}) * round(x), verified in exact
    /// integer arithmetic as (x - r) * 2^{p-1} <= r.
    #[test]
    fn rounding_error_bound(x in 1u64..=u64::MAX >> 17, p in 1u32..=16) {
        let r = round_to_significant_bits(x, p);
        let lhs = u128::from(x - r) << (p - 1);
        prop_assert!(lhs <= u128::from(r) << 1);
    }

    /// Rounding is idempotent and monotone.
    #[test]
    fn rounding_idempotent_and_monotone(x in 0u64.., y in 0u64.., p in 1u32..=16) {
        let rx = round_to_significant_bits(x, p);
        prop_assert_eq!(round_to_significant_bits(rx, p), rx);
        let ry = round_to_significant_bits(y, p);
        if x <= y {
            prop_assert!(rx <= ry);
        } else {
            prop_assert!(rx >= ry);
        }
    }

    /// The number of distinct labels stays within the Proposition 2 bound.
    #[test]
    fn rounding_distinct_labels_bounded(
        values in prop::collection::vec(1u64..1_000_000, 1..200),
        p in 1u8..=8,
    ) {
        let precision = Precision::Bits(p);
        let max = *values.iter().max().unwrap();
        let labels: std::collections::HashSet<u64> =
            values.iter().map(|&v| precision.round(v)).collect();
        let bound = precision.distinct_value_bound(max).unwrap();
        prop_assert!((labels.len() as u64) <= bound);
    }

    /// Integerization preserves the ordering of exact rational ratios.
    #[test]
    fn integerize_preserves_ratio_order(
        c1 in 1u64..100_000, s1 in 1u64..10_000,
        c2 in 1u64..100_000, s2 in 1u64..10_000,
    ) {
        let mut rounder = RatioRounder::new(Precision::Infinite);
        rounder.observe_size(s1.max(s2));
        let r1 = rounder.integerize(c1, s1);
        let r2 = rounder.integerize(c2, s2);
        // Compare exact rationals: c1/s1 vs c2/s2.
        let lhs = u128::from(c1) * u128::from(s2);
        let rhs = u128::from(c2) * u128::from(s1);
        // Rounding to nearest can reorder ratios that differ by less than
        // one integer step, so only assert on clearly separated ratios.
        if lhs > 2 * rhs {
            prop_assert!(r1 >= r2, "r1={r1} r2={r2}");
        }
        if rhs > 2 * lhs {
            prop_assert!(r2 >= r1, "r1={r1} r2={r2}");
        }
    }
}

// ------------------------------------------------------------------- heap

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(u32, u64),
    Update(u32, u64),
    Remove(u32),
    Pop,
}

fn heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..48, 0u64..500).prop_map(|(i, k)| HeapOp::Insert(i, k)),
            (0u32..48, 0u64..500).prop_map(|(i, k)| HeapOp::Update(i, k)),
            (0u32..48).prop_map(HeapOp::Remove),
            Just(HeapOp::Pop),
        ],
        0..400,
    )
}

fn check_heap_against_model<const D: usize>(ops: &[HeapOp]) -> Result<(), TestCaseError> {
    let mut heap = DaryHeap::<u64, D>::new();
    let mut model: std::collections::HashMap<u32, u64> = Default::default();
    for op in ops {
        match *op {
            HeapOp::Insert(id, key) => {
                model.entry(id).or_insert_with(|| {
                    heap.insert(id, key);
                    key
                });
            }
            HeapOp::Update(id, key) => {
                if model.contains_key(&id) {
                    heap.update(id, key);
                    model.insert(id, key);
                }
            }
            HeapOp::Remove(id) => {
                prop_assert_eq!(heap.remove(id), model.remove(&id));
            }
            HeapOp::Pop => {
                let got = heap.pop();
                let want_key = model.values().min().copied();
                prop_assert_eq!(got.map(|(_, k)| k), want_key);
                if let Some((id, _)) = got {
                    model.remove(&id);
                }
            }
        }
        prop_assert_eq!(heap.len(), model.len());
        if let Some((_, &min)) = heap.peek() {
            prop_assert_eq!(Some(min), model.values().min().copied());
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn heap_matches_model_arity8(ops in heap_ops()) {
        check_heap_against_model::<8>(&ops)?;
    }

    #[test]
    fn heap_matches_model_arity2(ops in heap_ops()) {
        check_heap_against_model::<2>(&ops)?;
    }

    #[test]
    fn heap_matches_model_arity5(ops in heap_ops()) {
        check_heap_against_model::<5>(&ops)?;
    }
}

// --------------------------------------------------------------- lru list

struct Node {
    value: u64,
    links: Links,
}

impl Linked for Node {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

#[derive(Debug, Clone)]
enum ListOp {
    PushBack(u64),
    PopFront,
    MoveToBack(usize),
    Unlink(usize),
}

proptest! {
    /// An LruList plus arena behaves exactly like a VecDeque model.
    #[test]
    fn lru_list_matches_vecdeque(
        ops in prop::collection::vec(
            prop_oneof![
                (0u64..1000).prop_map(ListOp::PushBack),
                Just(ListOp::PopFront),
                (0usize..64).prop_map(ListOp::MoveToBack),
                (0usize..64).prop_map(ListOp::Unlink),
            ],
            0..300,
        )
    ) {
        let mut arena: Arena<Node> = Arena::new();
        let mut list = LruList::new();
        let mut model: std::collections::VecDeque<(camp_core::arena::EntryId, u64)> =
            Default::default();
        for op in ops {
            match op {
                ListOp::PushBack(v) => {
                    let id = arena.insert(Node { value: v, links: Links::new() });
                    list.push_back(&mut arena, id);
                    model.push_back((id, v));
                }
                ListOp::PopFront => {
                    let got = list.pop_front(&mut arena);
                    let want = model.pop_front();
                    prop_assert_eq!(got, want.map(|(id, _)| id));
                    if let Some(id) = got {
                        arena.remove(id);
                    }
                }
                ListOp::MoveToBack(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        let (id, v) = model.remove(i).unwrap();
                        list.move_to_back(&mut arena, id);
                        model.push_back((id, v));
                    }
                }
                ListOp::Unlink(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        let (id, _) = model.remove(i).unwrap();
                        list.unlink(&mut arena, id);
                        arena.remove(id);
                    }
                }
            }
            prop_assert_eq!(list.len(), model.len());
            let got: Vec<u64> = list
                .iter(&arena)
                .map(|id| arena.get(id).unwrap().value)
                .collect();
            let want: Vec<u64> = model.iter().map(|&(_, v)| v).collect();
            prop_assert_eq!(got, want);
        }
    }
}

// ------------------------------------------------------------------- camp

#[derive(Debug, Clone)]
enum CacheOp {
    Get(u64),
    Insert { key: u64, size: u64, cost: u64 },
    Remove(u64),
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u64..64).prop_map(CacheOp::Get),
            4 => (0u64..64, 1u64..40, 0u64..20_000)
                .prop_map(|(key, size, cost)| CacheOp::Insert { key, size, cost }),
            1 => (0u64..64).prop_map(CacheOp::Remove),
        ],
        0..500,
    )
}

proptest! {
    /// Under arbitrary workloads CAMP never exceeds capacity, keeps its
    /// bookkeeping consistent, and keeps L non-decreasing (Proposition 1).
    #[test]
    fn camp_invariants_hold_under_arbitrary_ops(
        ops in cache_ops(),
        capacity in 40u64..400,
        p in 1u8..=8,
    ) {
        let mut cache: Camp<u64, u64> = Camp::new(capacity, Precision::Bits(p));
        let mut resident: std::collections::HashMap<u64, u64> = Default::default();
        let mut last_l = 0u128;
        let mut evicted = Vec::new();
        for op in ops {
            match op {
                CacheOp::Get(k) => {
                    let got = cache.get(&k).copied();
                    prop_assert_eq!(got, resident.get(&k).copied());
                }
                CacheOp::Insert { key, size, cost } => {
                    evicted.clear();
                    let out = cache.insert_with_evictions(key, size, size, cost, &mut evicted);
                    for (ek, _) in &evicted {
                        resident.remove(ek);
                    }
                    match out {
                        InsertOutcome::RejectedTooLarge => {
                            prop_assert!(size > capacity);
                        }
                        InsertOutcome::Inserted | InsertOutcome::Updated => {
                            resident.insert(key, size);
                        }
                    }
                }
                CacheOp::Remove(k) => {
                    let got = cache.remove(&k);
                    prop_assert_eq!(got.is_some(), resident.remove(&k).is_some());
                }
            }
            prop_assert!(cache.used_bytes() <= capacity);
            prop_assert_eq!(cache.len(), resident.len());
            let used: u64 = resident.values().sum();
            prop_assert_eq!(cache.used_bytes(), used);
            let l = cache.l_value();
            prop_assert!(l >= last_l, "L regressed");
            last_l = l;
            // Census totals agree with len().
            let census = cache.queue_census();
            prop_assert_eq!(census.iter().map(|q| q.len).sum::<usize>(), cache.len());
            prop_assert_eq!(census.len(), cache.queue_count());
        }
    }

    /// Evicted keys reported by insert_with_evictions are exactly the keys
    /// that stopped being resident.
    #[test]
    fn camp_eviction_reporting_is_exact(
        keys in prop::collection::vec((0u64..32, 1u64..30, 0u64..1000), 1..200),
    ) {
        let mut cache: Camp<u64, ()> = Camp::new(100, Precision::Bits(5));
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for (key, size, cost) in keys {
            let before: std::collections::HashSet<u64> = resident.clone();
            let mut evicted = Vec::new();
            let out = cache.insert_with_evictions(key, (), size, cost, &mut evicted);
            for (ek, ()) in &evicted {
                prop_assert!(before.contains(ek) || *ek == key);
                resident.remove(ek);
            }
            if !matches!(out, InsertOutcome::RejectedTooLarge) {
                resident.insert(key);
            }
            for k in &resident {
                prop_assert!(cache.contains(k), "key {k} should be resident");
            }
            prop_assert_eq!(cache.len(), resident.len());
        }
    }

    /// With a single (cost, size) class CAMP degenerates to plain LRU.
    #[test]
    fn camp_single_class_equals_lru(
        ops in prop::collection::vec((0u64..24, prop::bool::ANY), 1..400),
        capacity_items in 2u64..12,
    ) {
        let item = 10u64;
        let mut cache: Camp<u64, ()> = Camp::new(capacity_items * item, Precision::Bits(4));
        // Model: VecDeque front = LRU.
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for (key, _) in ops {
            if cache.get(&key).is_some() {
                let pos = model.iter().position(|&k| k == key).unwrap();
                model.remove(pos);
                model.push_back(key);
            } else {
                if model.len() as u64 == capacity_items {
                    let victim = model.pop_front().unwrap();
                    prop_assert!(!{
                        let mut ev = Vec::new();
                        cache.insert_with_evictions(key, (), item, 7, &mut ev);
                        ev.iter().any(|(k, _)| *k != victim)
                    }, "CAMP evicted a non-LRU key");
                } else {
                    cache.insert(key, (), item, 7);
                }
                model.push_back(key);
            }
            prop_assert_eq!(cache.len(), model.len());
            for k in &model {
                prop_assert!(cache.contains(k));
            }
            prop_assert_eq!(cache.queue_count(), usize::from(!model.is_empty()));
        }
    }
}
