//! # camp-policies — eviction policies around CAMP
//!
//! The shared [`EvictionPolicy`] trait plus every replacement algorithm the
//! CAMP paper evaluates against or surveys:
//!
//! * [`Lru`] — the size-aware LRU baseline (§3);
//! * [`Gds`] — exact Greedy Dual Size, the algorithm CAMP approximates (§2);
//! * [`PooledLru`] — the human-partitioned multi-pool baseline (§3, ref 18);
//! * [`LruK`], [`TwoQ`], [`Arc`] — the recency/frequency adaptive policies
//!   from the related-work discussion (§5);
//! * [`GdWheel`] — the other GDS approximation the paper compares itself to
//!   in prose (§5, ref 14);
//! * [`Gdsf`] (the Squid proxy's frequency-aware GDS variant) and [`Lfu`]
//!   — extension baselines beyond the paper's own set;
//! * [`BeladyMin`] — a clairvoyant offline reference bound;
//! * [`admission`] — admission-control wrappers (the paper's future work,
//!   §6).
//!
//! The CAMP algorithm itself lives in [`camp_core`] and implements
//! [`EvictionPolicy`] through this crate, so all policies are drop-in
//! interchangeable in the simulator, benchmarks, and the KVS server.
//!
//! Every policy is generic over its key type ([`CacheKey`]): the simulator
//! drives them with `u64` trace keys, the KVS server with `Box<[u8]>`
//! wire keys — same instances, no glue layer.
//!
//! ```
//! use camp_core::{Camp, Precision};
//! use camp_policies::{CacheRequest, EvictionPolicy, Gds, Lru};
//!
//! let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
//!     Box::new(Camp::<u64, ()>::new(1 << 16, Precision::Bits(5))),
//!     Box::new(Lru::new(1 << 16)),
//!     Box::new(Gds::new(1 << 16)),
//! ];
//! let mut evicted = Vec::new();
//! for policy in &mut policies {
//!     policy.reference(CacheRequest::new(7, 128, 10), &mut evicted);
//!     assert!(policy.contains(&7));
//! }
//! ```
//!
//! Policies can also be resolved by name through [`EvictionMode`], the
//! configuration surface shared by the `camp-sim` CLI and `camp-kvsd`:
//!
//! ```
//! use camp_policies::{EvictionMode, EvictionPolicy};
//!
//! let mode: EvictionMode = "camp:5".parse().unwrap();
//! let policy: Box<dyn EvictionPolicy<Box<[u8]>>> = mode.build(1 << 20);
//! assert_eq!(policy.name(), "camp(p=5)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod arc;
pub mod gd_wheel;
pub mod gds;
pub mod gdsf;
pub mod lfu;
pub mod lru;
pub mod lru_k;
pub mod offline;
pub mod policy;
pub mod pooled_lru;
pub mod profiler;
pub mod spec;
pub mod two_q;

mod util;

pub use crate::admission::{Admission, AdmissionRule};
pub use crate::arc::Arc;
pub use crate::gd_wheel::GdWheel;
pub use crate::gds::Gds;
pub use crate::gdsf::Gdsf;
pub use crate::lfu::Lfu;
pub use crate::lru::Lru;
pub use crate::lru_k::LruK;
pub use crate::offline::BeladyMin;
pub use crate::policy::{
    key_hash, AccessOutcome, CacheKey, CacheRequest, EvictionPolicy, PolicyEvent, PolicyEventKind,
    PolicyGauge, PolicyStats, SharedTraceSink, TraceSink,
};
pub use crate::pooled_lru::{PoolSplit, PooledLru};
pub use crate::profiler::{ShadowEstimate, ShadowProfiler};
pub use crate::spec::EvictionMode;
pub use crate::two_q::TwoQ;
