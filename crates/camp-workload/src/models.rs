//! Per-key size and cost models.
//!
//! The paper fixes a key-value pair's size and cost for the lifetime of a
//! trace ("Once a cost is assigned to a key-value pair, it remains in effect
//! for the entire trace"). Both models here are therefore *pure functions of
//! the key* (plus the generator seed): sampling the same key twice always
//! yields the same size and cost, without storing per-key state.
//!
//! The concrete models cover every workload in the evaluation:
//!
//! * [`CostModel::ThreeTier`] — the synthetic `{1, 100, 10K}` costs with
//!   equal probability (Figures 4–6, 9);
//! * [`CostModel::Constant`] — identical costs (Figure 7);
//! * [`CostModel::LogUniform`] — many distinct cost values over a wide range
//!   (Figure 8's "equi-sized pairs with varying costs");
//! * [`CostModel::ServiceTime`] — a lognormal RDBMS query-latency surrogate
//!   for the paper's "cost is the time required to compute the pair by
//!   issuing queries to the RDBMS";
//! * [`SizeModel::Fixed`], [`SizeModel::Uniform`], [`SizeModel::LogNormal`]
//!   — equi-sized and variable-sized values.

use camp_core::rng::Rng64;

/// Mixes a key id and a stream label into a per-key RNG seed
/// (SplitMix64-style finalizer).
fn key_seed(seed: u64, key: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(key.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn key_rng(seed: u64, key: u64, stream: u64) -> Rng64 {
    Rng64::seed_from_u64(key_seed(seed, key, stream))
}

/// Samples a standard normal via Box–Muller.
fn standard_normal(rng: &mut Rng64) -> f64 {
    let u1: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// How value sizes are assigned to keys.
///
/// # Examples
///
/// ```
/// use camp_workload::models::SizeModel;
///
/// let model = SizeModel::Uniform { min: 100, max: 1000 };
/// let a = model.size_of(42, 7);
/// // Deterministic per key:
/// assert_eq!(a, model.size_of(42, 7));
/// assert!((100..=1000).contains(&a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeModel {
    /// Every value has exactly this many bytes (Figure 8's equi-sized
    /// pairs).
    Fixed(u64),
    /// Sizes uniform in `min..=max`.
    Uniform {
        /// Smallest size in bytes (must be positive).
        min: u64,
        /// Largest size in bytes.
        max: u64,
    },
    /// Lognormal sizes — the heavy-tailed shape of real KVS values — clamped
    /// to `min..=max`.
    LogNormal {
        /// Location parameter of `ln(size)`.
        mu: f64,
        /// Scale parameter of `ln(size)`.
        sigma: f64,
        /// Lower clamp in bytes (must be positive).
        min: u64,
        /// Upper clamp in bytes.
        max: u64,
    },
}

impl SizeModel {
    /// The paper's BG-like profile: lognormal around ~1 KiB, 64 B – 64 KiB.
    #[must_use]
    pub fn bg_default() -> Self {
        SizeModel::LogNormal {
            mu: 6.9, // e^6.9 ~ 992 bytes
            sigma: 0.8,
            min: 64,
            max: 64 * 1024,
        }
    }

    /// The size of `key`'s value under generator seed `seed`.
    /// Deterministic: the same `(seed, key)` always yields the same size.
    #[must_use]
    pub fn size_of(&self, seed: u64, key: u64) -> u64 {
        match *self {
            SizeModel::Fixed(bytes) => bytes.max(1),
            SizeModel::Uniform { min, max } => {
                debug_assert!(min >= 1 && min <= max);
                key_rng(seed, key, 1).range_u64_inclusive(min, max)
            }
            SizeModel::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                let mut rng = key_rng(seed, key, 1);
                let sample = (mu + sigma * standard_normal(&mut rng)).exp();
                (sample as u64).clamp(min.max(1), max)
            }
        }
    }
}

/// How recomputation costs are assigned to keys.
///
/// # Examples
///
/// ```
/// use camp_workload::models::CostModel;
///
/// let model = CostModel::paper_three_tier();
/// let cost = model.cost_of(42, 99);
/// assert!([1, 100, 10_000].contains(&cost));
/// assert_eq!(cost, model.cost_of(42, 99)); // stable per key
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum CostModel {
    /// Every key has this cost (Figure 7).
    Constant(u64),
    /// Each key draws one value from the list with equal probability — the
    /// paper's synthetic `{1, 100, 10K}` assignment.
    ThreeTier(Vec<u64>),
    /// Costs log-uniform in `min..=max`: many distinct values across orders
    /// of magnitude (Figure 8).
    LogUniform {
        /// Smallest cost (must be positive).
        min: u64,
        /// Largest cost.
        max: u64,
    },
    /// A lognormal RDBMS service-time surrogate, in microseconds, clamped to
    /// `min..=max`. Stands in for the paper's measured query latencies.
    ServiceTime {
        /// Location parameter of `ln(cost)`.
        mu: f64,
        /// Scale parameter of `ln(cost)`.
        sigma: f64,
        /// Lower clamp.
        min: u64,
        /// Upper clamp.
        max: u64,
    },
}

impl CostModel {
    /// The paper's synthetic `{1, 100, 10K}` cost assignment.
    #[must_use]
    pub fn paper_three_tier() -> Self {
        CostModel::ThreeTier(vec![1, 100, 10_000])
    }

    /// An RDBMS-latency-like surrogate: median ~3 ms, spread over roughly
    /// 0.1 ms – 10 s, in microseconds.
    #[must_use]
    pub fn rdbms_default() -> Self {
        CostModel::ServiceTime {
            mu: 8.0, // e^8 ~ 3 ms in microseconds
            sigma: 1.5,
            min: 100,
            max: 10_000_000,
        }
    }

    /// The cost of computing `key`'s value under generator seed `seed`.
    /// Deterministic: the same `(seed, key)` always yields the same cost.
    ///
    /// # Panics
    ///
    /// Panics if a `ThreeTier` list is empty.
    #[must_use]
    pub fn cost_of(&self, seed: u64, key: u64) -> u64 {
        match self {
            CostModel::Constant(cost) => *cost,
            CostModel::ThreeTier(values) => {
                assert!(!values.is_empty(), "cost tier list must be non-empty");
                let idx = key_rng(seed, key, 2).range_usize(0, values.len());
                values[idx]
            }
            CostModel::LogUniform { min, max } => {
                debug_assert!(*min >= 1 && min <= max);
                let mut rng = key_rng(seed, key, 2);
                let (lo, hi) = ((*min as f64).ln(), (*max as f64).ln());
                let sample = (lo + (hi - lo) * rng.next_f64()).exp();
                (sample as u64).clamp(*min, *max)
            }
            CostModel::ServiceTime {
                mu,
                sigma,
                min,
                max,
            } => {
                let mut rng = key_rng(seed, key, 2);
                let sample = (mu + sigma * standard_normal(&mut rng)).exp();
                (sample as u64).clamp((*min).max(1), *max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_stable_per_key() {
        for model in [
            SizeModel::Fixed(512),
            SizeModel::Uniform { min: 10, max: 99 },
            SizeModel::bg_default(),
        ] {
            for key in 0..50 {
                assert_eq!(model.size_of(7, key), model.size_of(7, key));
            }
        }
    }

    #[test]
    fn sizes_respect_bounds() {
        let model = SizeModel::Uniform { min: 10, max: 20 };
        for key in 0..200 {
            let s = model.size_of(1, key);
            assert!((10..=20).contains(&s));
        }
        let model = SizeModel::bg_default();
        for key in 0..200 {
            let s = model.size_of(1, key);
            assert!((64..=65536).contains(&s));
        }
    }

    #[test]
    fn different_seeds_give_different_assignments() {
        let model = SizeModel::Uniform {
            min: 1,
            max: 1_000_000,
        };
        let same = (0..100)
            .filter(|&k| model.size_of(1, k) == model.size_of(2, k))
            .count();
        assert!(same < 5, "seeds should decorrelate assignments: {same}");
    }

    #[test]
    fn three_tier_is_roughly_uniform_over_tiers() {
        let model = CostModel::paper_three_tier();
        let mut counts = [0u64; 3];
        for key in 0..30_000u64 {
            match model.cost_of(5, key) {
                1 => counts[0] += 1,
                100 => counts[1] += 1,
                10_000 => counts[2] += 1,
                other => panic!("unexpected cost {other}"),
            }
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "tier imbalance: {counts:?}");
        }
    }

    #[test]
    fn log_uniform_spans_orders_of_magnitude() {
        let model = CostModel::LogUniform {
            min: 1,
            max: 100_000,
        };
        let costs: Vec<u64> = (0..5_000).map(|k| model.cost_of(3, k)).collect();
        assert!(costs.iter().any(|&c| c < 10));
        assert!(costs.iter().any(|&c| c > 10_000));
        let distinct: std::collections::HashSet<u64> = costs.iter().copied().collect();
        assert!(distinct.len() > 1000, "expected many distinct costs");
    }

    #[test]
    fn service_time_is_clamped_and_stable() {
        let model = CostModel::rdbms_default();
        for key in 0..500 {
            let c = model.cost_of(11, key);
            assert!((100..=10_000_000).contains(&c));
            assert_eq!(c, model.cost_of(11, key));
        }
    }

    #[test]
    fn constant_cost_is_constant() {
        let model = CostModel::Constant(42);
        assert!((0..100).all(|k| model.cost_of(9, k) == 42));
    }
}
