//! Size-aware LRU: the paper's primary baseline.
//!
//! Classic least-recently-used eviction with byte accounting: a miss inserts
//! at the MRU end; when space runs out, entries are evicted from the LRU end
//! regardless of cost or size. Built on the same arena + intrusive list as
//! CAMP's queues, so per-operation costs are directly comparable.

use std::collections::HashMap;

use camp_core::arena::{Arena, EntryId};
use camp_core::lru_list::{Linked, Links, LruList};

use crate::policy::{
    key_hash, AccessOutcome, CacheKey, CacheRequest, EvictionPolicy, PolicyEvent, PolicyEventKind,
    SharedTraceSink,
};

#[derive(Debug)]
struct Entry<K> {
    key: K,
    size: u64,
    /// Retained for trace events only; LRU ignores cost when evicting.
    cost: u64,
    links: Links,
}

impl<K> Linked for Entry<K> {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// A byte-capacity LRU cache.
///
/// # Examples
///
/// ```
/// use camp_policies::{CacheRequest, EvictionPolicy, Lru};
///
/// let mut lru = Lru::new(100);
/// let mut evicted = Vec::new();
/// lru.reference(CacheRequest::new(1, 60, 0), &mut evicted);
/// lru.reference(CacheRequest::new(2, 40, 0), &mut evicted);
/// // Referencing key 1 refreshes it, so key 2 is the LRU victim.
/// lru.reference(CacheRequest::new(1, 60, 0), &mut evicted);
/// lru.reference(CacheRequest::new(3, 40, 0), &mut evicted);
/// assert_eq!(evicted, vec![2]);
/// ```
#[derive(Debug)]
pub struct Lru<K = u64> {
    map: HashMap<K, EntryId>,
    arena: Arena<Entry<K>>,
    list: LruList,
    capacity: u64,
    used: u64,
    sink: Option<SharedTraceSink>,
}

impl<K: CacheKey> Lru<K> {
    /// Creates an LRU cache with the given byte capacity.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Lru {
            map: HashMap::new(),
            arena: Arena::new(),
            list: LruList::new(),
            capacity,
            used: 0,
            sink: None,
        }
    }

    /// The key next in line for eviction, if any.
    #[must_use]
    pub fn victim(&self) -> Option<K> {
        self.list
            .front()
            .and_then(|id| self.arena.get(id))
            .map(|e| e.key.clone())
    }

    /// Iterates over resident keys from LRU to MRU.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.list
            .iter(&self.arena)
            .filter_map(|id| self.arena.get(id).map(|e| e.key.clone()))
    }

    fn evict_one(&mut self, evicted: &mut Vec<K>) -> bool {
        let Some(id) = self.list.pop_front(&mut self.arena) else {
            return false;
        };
        let entry = self.arena.remove(id).expect("live LRU head");
        self.map.remove(&entry.key);
        self.used -= entry.size;
        if let Some(sink) = &self.sink {
            sink.record(&PolicyEvent::basic(
                PolicyEventKind::Evict,
                key_hash(&entry.key),
                entry.size,
                entry.cost,
            ));
        }
        evicted.push(entry.key);
        true
    }

    fn detach(&mut self, key: &K) -> Option<u64> {
        let id = self.map.remove(key)?;
        self.list.unlink(&mut self.arena, id);
        let entry = self.arena.remove(id).expect("live entry");
        self.used -= entry.size;
        Some(entry.size)
    }
}

impl<K: CacheKey> EvictionPolicy<K> for Lru<K> {
    fn name(&self) -> String {
        "lru".to_owned()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn reference(&mut self, req: CacheRequest<K>, evicted: &mut Vec<K>) -> AccessOutcome {
        assert!(req.size > 0, "key-value pairs have positive size");
        if let Some(&id) = self.map.get(&req.key) {
            self.list.move_to_back(&mut self.arena, id);
            return AccessOutcome::Hit;
        }
        if req.size > self.capacity {
            return AccessOutcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            let ok = self.evict_one(evicted);
            debug_assert!(ok, "byte accounting out of sync");
        }
        let id = self.arena.insert(Entry {
            key: req.key.clone(),
            size: req.size,
            cost: req.cost,
            links: Links::new(),
        });
        self.list.push_back(&mut self.arena, id);
        if let Some(sink) = &self.sink {
            sink.record(&PolicyEvent::basic(
                PolicyEventKind::Admit,
                key_hash(&req.key),
                req.size,
                req.cost,
            ));
        }
        self.map.insert(req.key, id);
        self.used += req.size;
        AccessOutcome::MissInserted
    }

    fn touch(&mut self, key: &K) -> bool {
        let Some(&id) = self.map.get(key) else {
            return false;
        };
        self.list.move_to_back(&mut self.arena, id);
        true
    }

    fn victim(&self) -> Option<K> {
        Lru::victim(self)
    }

    fn remove(&mut self, key: &K) -> bool {
        self.detach(key).is_some()
    }

    fn set_trace_sink(&mut self, sink: Option<SharedTraceSink>) {
        self.sink = sink;
    }

    fn trace_sink(&self) -> Option<&SharedTraceSink> {
        self.sink.as_ref()
    }

    fn eviction_event(&self, key: &K) -> Option<PolicyEvent> {
        let entry = self.arena.get(*self.map.get(key)?)?;
        Some(PolicyEvent::basic(
            PolicyEventKind::Evict,
            key_hash(key),
            entry.size,
            entry.cost,
        ))
    }

    fn queue_count(&self) -> Option<usize> {
        Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(lru: &mut Lru, key: u64, size: u64) -> (AccessOutcome, Vec<u64>) {
        let mut evicted = Vec::new();
        let out = lru.reference(CacheRequest::new(key, size, 0), &mut evicted);
        (out, evicted)
    }

    #[test]
    fn evicts_in_recency_order() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 10);
        touch(&mut lru, 3, 10);
        let (_, ev) = touch(&mut lru, 4, 10);
        assert_eq!(ev, vec![1]);
        let (_, ev) = touch(&mut lru, 5, 10);
        assert_eq!(ev, vec![2]);
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 10);
        touch(&mut lru, 3, 10);
        let (out, _) = touch(&mut lru, 1, 10);
        assert_eq!(out, AccessOutcome::Hit);
        let (_, ev) = touch(&mut lru, 4, 10);
        assert_eq!(ev, vec![2]);
        assert!(lru.contains(&1));
    }

    #[test]
    fn large_insert_evicts_several() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 10);
        touch(&mut lru, 3, 10);
        let (out, ev) = touch(&mut lru, 4, 25);
        assert_eq!(out, AccessOutcome::MissInserted);
        assert_eq!(ev, vec![1, 2, 3]);
        assert_eq!(lru.used_bytes(), 25);
    }

    #[test]
    fn oversized_request_bypasses() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        let (out, ev) = touch(&mut lru, 2, 31);
        assert_eq!(out, AccessOutcome::MissBypassed);
        assert!(ev.is_empty());
        assert!(lru.contains(&1));
    }

    #[test]
    fn remove_frees_space() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 20);
        assert!(EvictionPolicy::remove(&mut lru, &1));
        assert!(!EvictionPolicy::remove(&mut lru, &1));
        assert_eq!(lru.used_bytes(), 20);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn iter_and_victim_follow_lru_order() {
        let mut lru = Lru::new(100);
        for k in 1..=4 {
            touch(&mut lru, k, 10);
        }
        touch(&mut lru, 2, 10); // refresh 2
        assert_eq!(lru.iter().collect::<Vec<_>>(), vec![1, 3, 4, 2]);
        assert_eq!(lru.victim(), Some(1));
    }

    #[test]
    fn touch_refreshes_without_insert() {
        let mut lru = Lru::new(30);
        touch(&mut lru, 1, 10);
        touch(&mut lru, 2, 10);
        assert!(EvictionPolicy::touch(&mut lru, &1));
        assert!(!EvictionPolicy::touch(&mut lru, &9));
        assert_eq!(EvictionPolicy::victim(&lru), Some(2));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn byte_keys_work() {
        let mut lru: Lru<Box<[u8]>> = Lru::new(30);
        let a: Box<[u8]> = Box::from(&b"a"[..]);
        let b: Box<[u8]> = Box::from(&b"b"[..]);
        let mut evicted = Vec::new();
        lru.reference(CacheRequest::new(a.clone(), 20, 0), &mut evicted);
        lru.reference(CacheRequest::new(b.clone(), 20, 0), &mut evicted);
        assert_eq!(evicted, vec![a]);
        assert!(lru.contains(&b));
    }

    #[test]
    fn ignores_cost_entirely() {
        // LRU's defining weakness in the paper: it evicts the expensive pair
        // as readily as a cheap one.
        let mut lru = Lru::new(30);
        let mut evicted = Vec::new();
        lru.reference(CacheRequest::new(1, 10, 1_000_000), &mut evicted);
        lru.reference(CacheRequest::new(2, 10, 1), &mut evicted);
        lru.reference(CacheRequest::new(3, 10, 1), &mut evicted);
        lru.reference(CacheRequest::new(4, 10, 1), &mut evicted);
        assert_eq!(evicted, vec![1]);
    }
}
