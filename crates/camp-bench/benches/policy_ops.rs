//! Per-operation throughput of the eviction policies.
//!
//! The paper's efficiency claim — "CAMP is as fast as LRU" while GDS pays
//! `O(log n)` heap maintenance per hit — measured directly: each case
//! drives one policy through a pre-generated skewed request stream. Every
//! policy is built through the same [`EvictionMode`] spec layer the
//! simulator and the KVS server use.

use camp_bench::micro::Group;
use camp_core::{Camp, Precision};
use camp_policies::{CacheRequest, EvictionMode, EvictionPolicy, Gds, Lru};
use camp_workload::BgConfig;

fn requests() -> Vec<CacheRequest> {
    BgConfig::paper_scaled(50_000, 200_000, 7)
        .generate()
        .iter()
        .map(|r| CacheRequest::new(r.key, r.size, r.cost))
        .collect()
}

fn drive(policy: &mut dyn EvictionPolicy, requests: &[CacheRequest]) -> u64 {
    let mut evicted = Vec::new();
    let mut hits = 0u64;
    for req in requests {
        evicted.clear();
        if !policy.reference(*req, &mut evicted).is_miss() {
            hits += 1;
        }
    }
    hits
}

fn main() {
    let requests = requests();
    let unique: u64 = {
        let mut seen = std::collections::HashMap::new();
        for r in &requests {
            seen.insert(r.key, r.size);
        }
        seen.values().sum()
    };
    let capacity = unique / 4;

    let group = Group::new("policy_ops", requests.len() as u64, 10);
    for name in EvictionMode::all_names() {
        let mode: EvictionMode = name.parse().expect("documented name parses");
        group.case(name, || {
            let mut policy = mode.build::<u64>(capacity);
            drive(&mut *policy, &requests)
        });
    }
    // CAMP precision ablation beyond the spec defaults.
    group.case("camp:1", || {
        let mut policy = Camp::<u64, ()>::new(capacity, Precision::Bits(1));
        drive(&mut policy, &requests)
    });
    group.case("camp:inf", || {
        let mut policy = Camp::<u64, ()>::new(capacity, Precision::Infinite);
        drive(&mut policy, &requests)
    });

    // The hit path in isolation: everything resident, no evictions — the
    // regime where CAMP's "no heap update unless the head changes" shines.
    let group = Group::new("hit_path", requests.len() as u64, 10);
    let mut camp = Camp::<u64, ()>::new(u64::MAX, Precision::Bits(5));
    drive(&mut camp, &requests); // warm: everything resident
    group.case("camp-p5", || drive(&mut camp, &requests));
    let mut lru = Lru::new(u64::MAX);
    drive(&mut lru, &requests);
    group.case("lru", || drive(&mut lru, &requests));
    let mut gds = Gds::new(u64::MAX);
    drive(&mut gds, &requests);
    group.case("gds", || drive(&mut gds, &requests));
}
