//! The paper's introductory scenario: two applications sharing one cache.
//!
//! "One shows the profile of members while a second determines the displayed
//! advertisements. There may exist millions of key-value pairs corresponding
//! to different member profiles, each computed using a simple database
//! look-up […]. The second application may consist of thousands of key-value
//! pairs computed using a machine-learning algorithm that […] required hours
//! of execution."
//!
//! This example shows CAMP partitioning memory between the two *without*
//! the human-configured pools the paper's baseline needs — and re-balancing
//! on its own when the ad models stop being referenced.
//!
//! Run with `cargo run --release --example ad_server_mix`.

use camp::core::{Camp, Precision};
use camp::policies::{CacheRequest, EvictionPolicy, Lru};
use camp_core::rng::Rng64;

const PROFILE_SIZE: u64 = 1_024; // ~1 KiB database rows
const PROFILE_COST: u64 = 5; // milliseconds: a simple lookup
const MODEL_SIZE: u64 = 65_536; // 64 KiB ML models
const MODEL_COST: u64 = 3_600_000; // milliseconds: hours of training

const PROFILES: u64 = 50_000;
const MODELS: u64 = 200;
const MODEL_KEY_BASE: u64 = 1 << 32;

fn mixed_request(rng: &mut Rng64, ad_share: f64) -> CacheRequest {
    if rng.chance(ad_share) {
        let key = MODEL_KEY_BASE + rng.range_u64(0, MODELS);
        CacheRequest::new(key, MODEL_SIZE, MODEL_COST)
    } else {
        CacheRequest::new(rng.range_u64(0, PROFILES), PROFILE_SIZE, PROFILE_COST)
    }
}

fn run(policy: &mut dyn EvictionPolicy, phases: &[(usize, f64)]) {
    let mut rng = Rng64::seed_from_u64(7);
    let mut evicted = Vec::new();
    for &(requests, ad_share) in phases {
        let (mut missed_cost, mut total_cost) = (0u64, 0u64);
        for _ in 0..requests {
            let req = mixed_request(&mut rng, ad_share);
            evicted.clear();
            let outcome = policy.reference(req, &mut evicted);
            total_cost += req.cost;
            if outcome.is_miss() {
                missed_cost += req.cost;
            }
        }
        // How much memory each application holds at the end of the phase.
        let model_bytes: u64 = (0..MODELS)
            .filter(|&m| policy.contains(&(MODEL_KEY_BASE + m)))
            .count() as u64
            * MODEL_SIZE;
        println!(
            "  phase(ad_share={ad_share:.0e}): cost-miss {:>6.4}, ad-model memory {:>5.1}%",
            missed_cost as f64 / total_cost.max(1) as f64,
            100.0 * model_bytes as f64 / policy.capacity() as f64,
        );
    }
}

fn main() {
    // Memory holds ~10% of the profiles plus all models, but something has
    // to give: the cache is heavily contended.
    let capacity = PROFILES / 10 * PROFILE_SIZE + MODELS * MODEL_SIZE / 2;

    // Phase 1+2: ads are 1% of traffic (but ~all of the cost).
    // Phase 3: the ad application is decommissioned (share 0) — CAMP must
    // hand its memory back to the profiles without reconfiguration.
    let phases = [(200_000, 0.01), (200_000, 0.01), (400_000, 0.0)];

    println!("capacity: {:.1} MiB", capacity as f64 / (1 << 20) as f64);
    println!("LRU (cost-blind):");
    let mut lru = Lru::new(capacity);
    run(&mut lru, &phases);

    println!("CAMP (p=5, no pools, no operator):");
    let mut camp: Camp<u64, ()> = Camp::new(capacity, Precision::Bits(5));
    run(&mut camp, &phases);

    println!();
    println!("CAMP keeps the hours-to-recompute ad models resident while ads run,");
    println!("then ages them out once the application is gone — no repartitioning.");
}
