//! End-to-end tests of the `tracegen` binary.

use std::process::Command;

fn tracegen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracegen"))
}

#[test]
fn generate_then_info_roundtrip() {
    let dir = std::env::temp_dir().join("camp-tracegen-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cli.trace");

    let output = tracegen()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--members",
            "500",
            "--requests",
            "5000",
            "--seed",
            "7",
        ])
        .output()
        .expect("run tracegen generate");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("wrote 5000 rows"), "{stdout}");
    assert!(stdout.contains("skew"), "{stdout}");

    let output = tracegen()
        .args(["info", path.to_str().unwrap()])
        .output()
        .expect("run tracegen info");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("requests          : 5000"), "{stdout}");
    assert!(stdout.contains("distinct costs    : 3"), "{stdout}");
    assert!(stdout.contains("costs stable"), "{stdout}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn evolving_generates_disjoint_trace_files() {
    let dir = std::env::temp_dir().join("camp-tracegen-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("evolving.trace");
    let output = tracegen()
        .args([
            "evolving",
            "--out",
            path.to_str().unwrap(),
            "--traces",
            "3",
            "--members",
            "200",
            "--requests",
            "1000",
        ])
        .output()
        .expect("run tracegen evolving");
    assert!(output.status.success(), "{output:?}");
    let trace = camp_workload::Trace::load(&path).expect("readable trace");
    assert_eq!(trace.len(), 3_000);
    let ids: std::collections::HashSet<u32> = trace.iter().map(|r| r.trace_id).collect();
    assert_eq!(ids, [0u32, 1, 2].into_iter().collect());
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_usage_fails_with_help() {
    let output = tracegen().output().expect("run tracegen");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));

    let output = tracegen()
        .args(["generate"]) // missing --out
        .output()
        .expect("run tracegen generate");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--out is required"));

    let output = tracegen()
        .args(["generate", "--out", "/tmp/x", "--workload", "nope"])
        .output()
        .expect("run tracegen generate");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown workload"));
}
