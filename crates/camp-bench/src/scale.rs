//! Experiment scales: the paper's full-size traces and scaled-down
//! versions for quick runs.

use camp_workload::{BgConfig, Trace};

/// The master seed all harness traces derive from.
pub const HARNESS_SEED: u64 = 2014;

/// How big the regenerated experiments are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick runs: ~400K-row traces (seconds per figure).
    Small,
    /// Mid-size: ~1M-row traces.
    Medium,
    /// The paper's published scale: 4M-row traces, 600K members.
    Paper,
}

impl Scale {
    /// Parses a `--scale` argument.
    #[must_use]
    pub fn parse(text: &str) -> Option<Scale> {
        match text {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Member population of a single trace.
    #[must_use]
    pub fn members(self) -> u64 {
        match self {
            Scale::Small => 20_000,
            Scale::Medium => 60_000,
            Scale::Paper => 600_000,
        }
    }

    /// Rows per single trace.
    #[must_use]
    pub fn requests(self) -> usize {
        match self {
            Scale::Small => 400_000,
            Scale::Medium => 1_000_000,
            Scale::Paper => 4_000_000,
        }
    }

    /// Rows per trace file in the §3.1 evolving-pattern experiment (10
    /// back-to-back trace files).
    #[must_use]
    pub fn evolving_requests(self) -> usize {
        match self {
            Scale::Small => 100_000,
            Scale::Medium => 250_000,
            Scale::Paper => 4_000_000,
        }
    }

    /// Members per evolving trace file.
    #[must_use]
    pub fn evolving_members(self) -> u64 {
        match self {
            Scale::Small => 5_000,
            Scale::Medium => 15_000,
            Scale::Paper => 600_000,
        }
    }

    /// Rows replayed against the live server (Figure 9). TCP round-trips
    /// dominate here, so even `Paper` stays below the trace size.
    #[must_use]
    pub fn server_requests(self) -> usize {
        match self {
            Scale::Small => 60_000,
            Scale::Medium => 150_000,
            Scale::Paper => 1_000_000,
        }
    }

    /// Members for the server-replay trace.
    #[must_use]
    pub fn server_members(self) -> u64 {
        match self {
            Scale::Small => 3_000,
            Scale::Medium => 8_000,
            Scale::Paper => 50_000,
        }
    }

    /// The headline trace: BG-like skew, synthetic `{1, 100, 10K}` costs.
    #[must_use]
    pub fn three_tier_trace(self) -> Trace {
        BgConfig::paper_scaled(self.members(), self.requests(), HARNESS_SEED).generate()
    }

    /// Figure 7's trace: variable sizes, constant cost.
    #[must_use]
    pub fn variable_size_trace(self) -> Trace {
        BgConfig::variable_size_constant_cost(self.members(), self.requests(), HARNESS_SEED)
            .generate()
    }

    /// Figure 8's trace: equi-sized values, continuous costs.
    #[must_use]
    pub fn equi_size_trace(self) -> Trace {
        BgConfig::equi_size_variable_cost(self.members(), self.requests(), HARNESS_SEED).generate()
    }

    /// The §3.1 workload: ten disjoint trace files back to back.
    #[must_use]
    pub fn evolving_trace(self) -> Trace {
        let base = BgConfig::paper_scaled(
            self.evolving_members(),
            self.evolving_requests(),
            HARNESS_SEED,
        );
        camp_workload::evolving_workload(&base, 10)
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Small => f.write_str("small"),
            Scale::Medium => f.write_str("medium"),
            Scale::Paper => f.write_str("paper"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for scale in [Scale::Small, Scale::Medium, Scale::Paper] {
            assert_eq!(Scale::parse(&scale.to_string()), Some(scale));
        }
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn small_traces_have_the_advertised_shape() {
        let trace = Scale::Small.three_tier_trace();
        assert_eq!(trace.len(), 400_000);
        let stats = trace.stats();
        assert_eq!(stats.distinct_costs, 3);
        // The evolving workload is 10 trace files of evolving_requests()
        // rows each (generating the full 1M-row trace is exercised by the
        // harness itself; here the arithmetic contract suffices).
        assert_eq!(Scale::Small.evolving_requests() * 10, 1_000_000);
    }
}
