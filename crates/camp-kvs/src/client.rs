//! A blocking client for the KVS server — the reproduction's stand-in for
//! the Whalin memcached client the paper's request generator used (§4).

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A fetched value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// The value bytes.
    pub data: Vec<u8>,
    /// The flags stored with it.
    pub flags: u32,
}

/// A blocking text-protocol client.
///
/// # Examples
///
/// ```no_run
/// use camp_kvs::client::Client;
///
/// let mut client = Client::connect("127.0.0.1:11211")?;
/// client.set(b"greeting", b"hello", 0, 0)?;
/// let value = client.get(b"greeting")?.expect("stored");
/// assert_eq!(value.data, b"hello");
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reusable response-line buffer: one connection reads thousands of
    /// lines, so `read_line` fills this in place instead of allocating a
    /// fresh `Vec` per line.
    line: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from establishing the connection.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            line: Vec::new(),
        })
    }

    /// `get <key>` — returns the value if resident.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Value>> {
        self.send_line(b"get", key, None)?;
        self.read_get_response(key)
    }

    /// `iqget <key>` — like `get`, but a miss arms the server's IQ cost
    /// timer for this key.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn iqget(&mut self, key: &[u8]) -> io::Result<Option<Value>> {
        self.send_line(b"iqget", key, None)?;
        self.read_get_response(key)
    }

    /// `set <key> <flags> <exptime> <len>` + data.
    ///
    /// # Errors
    ///
    /// Returns I/O errors; `Ok(false)` when the server replied with an
    /// error status (e.g. the object was too large).
    pub fn set(&mut self, key: &[u8], value: &[u8], flags: u32, exptime: u64) -> io::Result<bool> {
        self.send_set(b"set", key, value, flags, exptime, None)
    }

    /// `iqset`, optionally with an explicit cost hint (the paper's
    /// "application provided hints" channel).
    ///
    /// # Errors
    ///
    /// Returns I/O errors; `Ok(false)` on a server error status.
    pub fn iqset(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u64,
        cost_hint: Option<u64>,
    ) -> io::Result<bool> {
        self.send_set(b"iqset", key, value, flags, exptime, cost_hint)
    }

    /// `add` — stores only if the key is absent. `Ok(false)` when the key
    /// already exists (or on a server error status).
    ///
    /// # Errors
    ///
    /// Returns I/O errors as `io::Error`.
    pub fn add(&mut self, key: &[u8], value: &[u8], flags: u32, exptime: u64) -> io::Result<bool> {
        self.send_set(b"add", key, value, flags, exptime, None)
    }

    /// `replace` — stores only if the key is present.
    ///
    /// # Errors
    ///
    /// Returns I/O errors as `io::Error`.
    pub fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u64,
    ) -> io::Result<bool> {
        self.send_set(b"replace", key, value, flags, exptime, None)
    }

    /// `incr <key> <delta>` — returns the new value, or `None` when the key
    /// is absent or non-numeric.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn incr(&mut self, key: &[u8], delta: u64) -> io::Result<Option<u64>> {
        self.arith(b"incr", key, delta)
    }

    /// `decr <key> <delta>` — like [`Client::incr`], floored at zero.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn decr(&mut self, key: &[u8], delta: u64) -> io::Result<Option<u64>> {
        self.arith(b"decr", key, delta)
    }

    fn arith(&mut self, verb: &[u8], key: &[u8], delta: u64) -> io::Result<Option<u64>> {
        self.send_line(verb, key, Some(&delta.to_string()))?;
        self.read_line()?;
        if self.line == b"NOT_FOUND" {
            return Ok(None);
        }
        std::str::from_utf8(&self.line)
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Some)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad incr/decr response"))
    }

    /// `touch <key> <exptime>` — updates a resident key's expiry.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn touch(&mut self, key: &[u8], exptime: u64) -> io::Result<bool> {
        self.send_line(b"touch", key, Some(&exptime.to_string()))?;
        self.read_line()?;
        Ok(self.line == b"TOUCHED")
    }

    /// `flush_all` — drops every item on the server.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn flush_all(&mut self) -> io::Result<()> {
        self.writer.write_all(b"flush_all\r\n")?;
        self.read_line()?;
        if self.line == b"OK" {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "flush_all failed",
            ))
        }
    }

    /// `version` — the server's version banner.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn version(&mut self) -> io::Result<String> {
        self.writer.write_all(b"version\r\n")?;
        self.read_line()?;
        Ok(String::from_utf8_lossy(&self.line).into_owned())
    }

    /// `delete <key>`.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn delete(&mut self, key: &[u8]) -> io::Result<bool> {
        self.send_line(b"delete", key, None)?;
        self.read_line()?;
        Ok(self.line == b"DELETED")
    }

    /// `stats` — returns the STAT table.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn stats(&mut self) -> io::Result<BTreeMap<String, String>> {
        self.writer.write_all(b"stats\r\n")?;
        self.read_stat_table()
    }

    /// `stats detail` — the full telemetry table: everything `stats`
    /// reports plus per-command latency quantiles (`latency:get:p99_us`),
    /// per-shard policy internals (`policy:0:l_value`), eviction causes and
    /// the IQ registry gauges.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn stats_detail(&mut self) -> io::Result<BTreeMap<String, String>> {
        self.writer.write_all(b"stats detail\r\n")?;
        self.read_stat_table()
    }

    /// `stats reset` — zeroes the server's counters and histograms (cache
    /// contents are untouched).
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations as `io::Error`.
    pub fn stats_reset(&mut self) -> io::Result<()> {
        self.writer.write_all(b"stats reset\r\n")?;
        self.read_line()?;
        if self.line == b"RESET" {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stats reset failed",
            ))
        }
    }

    fn read_stat_table(&mut self) -> io::Result<BTreeMap<String, String>> {
        let mut out = BTreeMap::new();
        loop {
            self.read_line()?;
            if self.line == b"END" {
                return Ok(out);
            }
            let text = String::from_utf8_lossy(&self.line);
            if let Some(rest) = text.strip_prefix("STAT ") {
                if let Some((name, value)) = rest.split_once(' ') {
                    out.insert(name.to_owned(), value.to_owned());
                }
            }
        }
    }

    /// `quit` — asks the server to close the connection.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write.
    pub fn quit(mut self) -> io::Result<()> {
        self.writer.write_all(b"quit\r\n")
    }

    fn send_line(&mut self, verb: &[u8], key: &[u8], extra: Option<&str>) -> io::Result<()> {
        self.writer.write_all(verb)?;
        self.writer.write_all(b" ")?;
        self.writer.write_all(key)?;
        if let Some(extra) = extra {
            self.writer.write_all(b" ")?;
            self.writer.write_all(extra.as_bytes())?;
        }
        self.writer.write_all(b"\r\n")
    }

    fn send_set(
        &mut self,
        verb: &[u8],
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u64,
        cost_hint: Option<u64>,
    ) -> io::Result<bool> {
        self.writer.write_all(verb)?;
        self.writer.write_all(b" ")?;
        self.writer.write_all(key)?;
        match cost_hint {
            Some(cost) => write!(self.writer, " {flags} {exptime} {} {cost}\r\n", value.len())?,
            None => write!(self.writer, " {flags} {exptime} {}\r\n", value.len())?,
        }
        self.writer.write_all(value)?;
        self.writer.write_all(b"\r\n")?;
        self.read_line()?;
        Ok(self.line == b"STORED")
    }

    fn read_get_response(&mut self, expected_key: &[u8]) -> io::Result<Option<Value>> {
        let mut result = None;
        loop {
            self.read_line()?;
            if self.line == b"END" {
                return Ok(result);
            }
            // Parse the header fields out of the reusable line buffer
            // before `read_exact` needs the reader again.
            let (key_matches, flags, len) = {
                let text = String::from_utf8_lossy(&self.line);
                let Some(rest) = text.strip_prefix("VALUE ") else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected response line: {text}"),
                    ));
                };
                let mut fields = rest.split(' ');
                let key = fields.next().unwrap_or_default();
                let flags: u32 = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad flags"))?;
                let len: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad length"))?;
                (key.as_bytes() == expected_key, flags, len)
            };
            let mut data = vec![0u8; len];
            self.reader.read_exact(&mut data)?;
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
            if key_matches {
                result = Some(Value { data, flags });
            }
        }
    }

    /// Reads one line into the reusable `self.line` buffer, stripped of
    /// its CRLF terminator. Allocation-free once the buffer is warm.
    fn read_line(&mut self) -> io::Result<()> {
        self.line.clear();
        let read = self.reader.read_until(b'\n', &mut self.line)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while self.line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            self.line.pop();
        }
        Ok(())
    }
}
