//! Chaos and lifecycle integration tests: the server under deterministic
//! fault injection with resilient clients, graceful drain semantics,
//! overload rejection, slowloris eviction, and the oversize-value guard —
//! each asserting the matching `conn_rejected` / `faults_injected`
//! counters so the failure telemetry is tested, not just the failures.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use camp_core::Precision;
use camp_kvs::client::{Client, ClientConfig};
use camp_kvs::fault::FaultPlan;
use camp_kvs::server::{Server, ServerOptions};
use camp_kvs::slab::SlabConfig;
use camp_kvs::store::{EvictionMode, StoreConfig};

fn base_options() -> ServerOptions {
    ServerOptions::new(StoreConfig {
        // Roomy enough that the chaos workload never evicts: store
        // invariants below assume every confirmed set stays resident.
        slab: SlabConfig::small(64 * 1024, 64),
        eviction: EvictionMode::Camp(Precision::Bits(5)),
    })
}

fn start(options: ServerOptions) -> Server {
    Server::start_with("127.0.0.1:0", options).expect("bind test server")
}

fn resilient(retries: u32) -> ClientConfig {
    ClientConfig {
        retry_sets: true,
        ..ClientConfig::resilient(retries)
    }
}

fn stat_table(client: &mut Client) -> BTreeMap<String, String> {
    client.stats_detail().expect("stats detail")
}

fn stat_u64(table: &BTreeMap<String, String>, key: &str) -> u64 {
    table
        .get(key)
        .unwrap_or_else(|| panic!("missing STAT {key} in {table:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("STAT {key} is not a number"))
}

/// The acceptance scenario: a chaos plan drops connections, delays and
/// forces errors, while resilient clients hammer the store from several
/// threads. The run must complete with a bounded client-visible error
/// rate, every confirmed write must read back intact, the injected-fault
/// counters must show the chaos actually fired, and the final drain must
/// be clean.
#[test]
fn chaos_workload_survives_with_bounded_errors_and_clean_drain() {
    let plan: FaultPlan = "drop=0.03,delay=200us@0.1,err=0.03,seed=7"
        .parse()
        .expect("valid chaos spec");
    let server = start(ServerOptions {
        fault_plan: Some(plan),
        ..base_options()
    });
    let addr = server.local_addr();

    const THREADS: u64 = 4;
    const OPS: u64 = 200;
    let failures = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_with(addr, resilient(6)).expect("chaos client connects");
                for i in 0..OPS {
                    let key = format!("t{tid}-k{i}");
                    let value = format!("value-{tid}-{i}");
                    // An injected error reply surfaces as Ok(false);
                    // insist on a confirmed store before moving on.
                    let mut stored = false;
                    for _ in 0..10 {
                        if let Ok(true) = client.set(key.as_bytes(), value.as_bytes(), 0, 0) {
                            stored = true;
                            break;
                        }
                    }
                    if !stored {
                        failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match client.get(key.as_bytes()) {
                        Ok(Some(got)) => assert_eq!(
                            got.data,
                            value.as_bytes(),
                            "stored value must read back intact"
                        ),
                        Ok(None) => panic!("{key} was confirmed stored but is gone"),
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let counters = client.counters();
                let _ = client.quit();
                counters
            })
        })
        .collect();
    let mut total_reconnects = 0;
    for handle in handles {
        total_reconnects += handle.join().expect("no worker panicked").reconnects;
    }

    let total_ops = THREADS * OPS * 2;
    let failed = failures.load(Ordering::Relaxed);
    assert!(
        (failed as f64) < (total_ops as f64) * 0.05,
        "error rate too high: {failed}/{total_ops}"
    );
    // With a 3% drop rate over ~1600 commands, the clients must have
    // reconnected; the fault counters must agree the chaos fired.
    assert!(total_reconnects > 0, "drops never forced a reconnect");
    let mut probe = Client::connect_with(addr, resilient(10)).expect("probe connects");
    let detail = stat_table(&mut probe);
    assert!(stat_u64(&detail, "faults_injected:drop") > 0, "{detail:?}");
    assert!(stat_u64(&detail, "faults_injected:error") > 0, "{detail:?}");
    assert!(stat_u64(&detail, "faults_injected:delay") > 0, "{detail:?}");
    let _ = probe.quit();

    // Every client is gone: the drain must complete without severing.
    let report = server.shutdown_with_drain(Duration::from_secs(5));
    assert!(report.is_clean(), "drain severed connections: {report:?}");
}

/// A connection stuck mid-command (an announced data block that never
/// arrives) cannot drain; the deadline must sever it and say so.
#[test]
fn drain_severs_a_stuck_connection_at_the_deadline() {
    let server = start(base_options());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Announce 5 bytes, deliver 3, then stall forever.
    stream.write_all(b"set stuck 0 0 5\r\nwor").unwrap();
    // Give the server time to accept and start reading the block.
    std::thread::sleep(Duration::from_millis(100));
    let report = server.shutdown_with_drain(Duration::from_millis(300));
    assert_eq!(report.connections_at_drain, 1, "{report:?}");
    assert_eq!(report.severed, 1, "{report:?}");
    assert_eq!(report.drained, 0, "{report:?}");
    // The severed client observes the connection ending.
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
}

/// A slowloris client trickling bytes without ever completing a command
/// is evicted at the idle deadline with an explicit error, and the
/// eviction lands in the `conn_rejected` counter.
#[test]
fn slowloris_client_is_evicted_at_the_idle_deadline() {
    let server = start(ServerOptions {
        idle_timeout: Duration::from_millis(300),
        ..base_options()
    });
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = stream;
    let mut received = Vec::new();
    // Trickle one byte per 50 ms — always inside the read-timeout tick,
    // never completing a command. Eviction is keyed to the last
    // *completed* command, so the trickle must not save the connection.
    for _ in 0..40 {
        let _ = writer.write_all(b"g");
        let mut buf = [0u8; 256];
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => received.extend_from_slice(&buf[..n]),
            Err(_) => {} // read timeout: keep trickling
        }
        if received.ends_with(b"\r\n") {
            break;
        }
    }
    let text = String::from_utf8_lossy(&received);
    assert!(
        text.contains("SERVER_ERROR idle timeout"),
        "expected an explicit idle-timeout error, got: {text:?}"
    );
    let mut probe = Client::connect(server.local_addr()).unwrap();
    let detail = stat_table(&mut probe);
    assert_eq!(stat_u64(&detail, "conn_rejected:idle_timeout"), 1);
    let _ = probe.quit();
    server.shutdown();
}

/// A 100-connection burst against an 8-connection cap: every connection
/// past the cap gets an explicit `SERVER_ERROR` (never a silent stall)
/// and the rejection counter matches exactly. Shared by the per-worker
/// SO_REUSEPORT intake path and the single-accept-thread fallback — the
/// accept-side reservation accounting must be identical on both.
fn burst_rejects_exactly_92(options: ServerOptions) {
    let server = start(options);
    let addr = server.local_addr();
    let mut streams = Vec::new();
    for _ in 0..100 {
        let mut stream = TcpStream::connect(addr).expect("TCP connect always succeeds");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"version\r\n").unwrap();
        streams.push(stream);
    }
    let mut accepted = 0;
    let mut rejected = 0;
    let mut held = Vec::new();
    for mut stream in streams {
        let mut response = Vec::new();
        let mut buf = [0u8; 256];
        // One line is enough to classify; rejected connections also close.
        while !response.contains(&b'\n') {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => response.extend_from_slice(&buf[..n]),
                Err(err) => panic!("burst connection stalled: {err}"),
            }
        }
        let text = String::from_utf8_lossy(&response);
        if text.starts_with("VERSION") {
            accepted += 1;
            held.push(stream); // keep accepted connections open
        } else {
            assert!(
                text.starts_with("SERVER_ERROR too many connections"),
                "unexpected reply: {text:?}"
            );
            rejected += 1;
        }
    }
    assert_eq!(accepted, 8);
    assert_eq!(rejected, 92);
    // The counter agrees, queried over one of the live connections.
    let mut conn = held.pop().unwrap();
    conn.write_all(b"stats detail\r\n").unwrap();
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    while !response.ends_with(b"END\r\n") {
        let n = conn.read(&mut buf).unwrap();
        assert!(n > 0, "stats detail truncated");
        response.extend_from_slice(&buf[..n]);
    }
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.contains("STAT conn_rejected:max_conns 92"),
        "missing rejection counter in:\n{text}"
    );
    drop(held);
    drop(conn);
    server.shutdown();
}

/// The burst on the default intake path: two reactor workers, each with
/// its own SO_REUSEPORT listener. The cap is one shared counter, so the
/// 8/92 split must hold exactly no matter which listener the kernel
/// routes each connection to.
#[test]
fn connection_burst_past_max_conns_is_rejected_explicitly() {
    burst_rejects_exactly_92(ServerOptions {
        max_conns: 8,
        workers: 2,
        ..base_options()
    });
}

/// The same burst through the `--single-listener` fallback: one blocking
/// accept thread feeding both workers must account identically.
#[test]
fn connection_burst_is_rejected_identically_on_the_single_listener_path() {
    burst_rejects_exactly_92(ServerOptions {
        max_conns: 8,
        workers: 2,
        single_listener: true,
        ..base_options()
    });
}

/// Once a drain begins, the per-worker listeners close before anything
/// else happens: a connection arriving mid-drain is either refused
/// outright or, if it sneaks into the kernel backlog, never served.
#[test]
fn no_connection_is_accepted_after_the_drain_begins() {
    let server = start(ServerOptions {
        workers: 2,
        ..base_options()
    });
    let addr = server.local_addr();
    // A stuck connection (announced data block, missing bytes) holds the
    // drain open until the deadline severs it.
    let mut stuck = TcpStream::connect(addr).unwrap();
    stuck.write_all(b"set stuck 0 0 5\r\nwor").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let handle = std::thread::spawn(move || server.shutdown_with_drain(Duration::from_millis(600)));
    // Well inside the drain window: every worker has observed the drain
    // flag and closed its listener.
    std::thread::sleep(Duration::from_millis(200));
    match TcpStream::connect(addr) {
        // Refused: the listening sockets are gone — the strong outcome.
        Err(_) => {}
        // A race with lingering kernel state can still complete the TCP
        // handshake; the server must then never speak to the socket.
        Ok(mut late) => {
            late.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = late.write_all(b"version\r\n");
            let mut response = Vec::new();
            let mut buf = [0u8; 256];
            loop {
                match late.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => response.extend_from_slice(&buf[..n]),
                    Err(_) => break, // timeout: nothing ever arrived
                }
            }
            let text = String::from_utf8_lossy(&response);
            assert!(
                !text.contains("VERSION"),
                "a connection was served after the drain began: {text:?}"
            );
        }
    }
    let report = handle.join().expect("drain thread");
    assert_eq!(report.severed, 1, "{report:?}");
    // The severed client observes the connection ending.
    let mut buf = [0u8; 16];
    assert_eq!(stuck.read(&mut buf).unwrap_or(0), 0);
}

/// A `set` announcing a data block over the value cap is refused with an
/// explicit `SERVER_ERROR` *before* any data byte is read, the connection
/// closes (the refused block would desync the stream), and the rejection
/// is counted.
#[test]
fn oversize_set_gets_explicit_error_and_closes_the_connection() {
    let server = start(ServerOptions {
        max_value_len: 4096,
        ..base_options()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The header alone must trigger the refusal — no data follows.
    stream.write_all(b"set big 0 0 5000\r\n").unwrap();
    let mut response = Vec::new();
    let mut buf = [0u8; 256];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break, // the server must close after the error
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(err) => panic!("oversize set stalled: {err}"),
        }
    }
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("SERVER_ERROR object too large for cache"),
        "unexpected reply: {text:?}"
    );

    // A value inside the cap still stores, and the counter recorded the
    // rejection.
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(client.set(b"ok", &[b'x'; 1024], 0, 0).unwrap());
    let detail = stat_table(&mut client);
    assert_eq!(stat_u64(&detail, "conn_rejected:value_too_large"), 1);
    let _ = client.quit();
    server.shutdown();
}

/// The resilient client heals around a high drop rate: every command
/// eventually succeeds and the reconnect counter shows the healing
/// happened.
#[test]
fn resilient_client_reconnects_through_drops() {
    let plan: FaultPlan = "drop=0.3,seed=11".parse().unwrap();
    let server = start(ServerOptions {
        fault_plan: Some(plan),
        ..base_options()
    });
    let mut client =
        Client::connect_with(server.local_addr(), resilient(8)).expect("client connects");
    for i in 0..50u32 {
        let key = format!("drop-k{i}");
        let value = b"payload";
        let mut stored = false;
        for _ in 0..10 {
            if client.set(key.as_bytes(), value, 0, 0).unwrap_or(false) {
                stored = true;
                break;
            }
        }
        assert!(stored, "set {key} never succeeded");
        let got = client.get(key.as_bytes()).expect("get heals via retries");
        assert_eq!(got.expect("resident").data, value);
    }
    let counters = client.counters();
    assert!(counters.reconnects > 0, "{counters:?}");
    assert!(counters.retries > 0, "{counters:?}");
    let _ = client.quit();
    server.shutdown();
}
