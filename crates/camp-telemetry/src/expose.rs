//! Prometheus-style text exposition (version 0.0.4 format).
//!
//! A tiny builder for `# HELP`/`# TYPE` families and their samples, shared
//! by the server's `--metrics-addr` endpoint, the `stats detail` protocol
//! command's backing snapshot, and the simulator's report rendering — one
//! vocabulary for every surface. Histograms are exposed in *summary* form
//! (quantile-labelled gauges plus `_sum`/`_count`), which keeps scrape
//! output small and matches how the paper reports latencies.

use std::fmt::Write;

use crate::histogram::HistogramSnapshot;

/// The exposition type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Quantile summary of a distribution.
    Summary,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

/// Builds one exposition document.
///
/// # Examples
///
/// ```
/// use camp_telemetry::{Exposition, MetricKind};
///
/// let mut exp = Exposition::new();
/// exp.family("camp_get_hits_total", "get hits", MetricKind::Counter);
/// exp.int_value("camp_get_hits_total", &[("shard", "0")], 17);
/// let text = exp.render();
/// assert!(text.contains("camp_get_hits_total{shard=\"0\"} 17"));
/// ```
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    #[must_use]
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Emits the `# HELP` and `# TYPE` header for a family. Call once per
    /// family, before its samples.
    pub fn family(&mut self, name: &str, help: &str, kind: MetricKind) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.as_str());
    }

    fn labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (key, value)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(key);
            self.out.push_str("=\"");
            for ch in value.chars() {
                match ch {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    other => self.out.push(other),
                }
            }
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// One integer-valued sample.
    pub fn int_value(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        self.labels(labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// One float-valued sample.
    pub fn value(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.labels(labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Summary samples for a histogram: `{quantile="…"}` lines for
    /// p50/p90/p99/p999, plus `_sum` and `_count`. Extra labels are
    /// prepended to the quantile label.
    pub fn summary(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        for (q, text) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", text));
            self.int_value(name, &with_q, snap.quantile(q));
        }
        self.int_value(&format!("{name}_sum"), labels, snap.sum);
        self.int_value(&format!("{name}_count"), labels, snap.count);
    }

    /// The assembled document.
    #[must_use]
    pub fn render(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn families_and_samples_render_in_order() {
        let mut exp = Exposition::new();
        exp.family("camp_items", "live items", MetricKind::Gauge);
        exp.int_value("camp_items", &[], 3);
        exp.value("camp_miss_rate", &[("policy", "camp(p=5)")], 0.25);
        let text = exp.render();
        assert!(text.starts_with("# HELP camp_items live items\n# TYPE camp_items gauge\n"));
        assert!(text.contains("camp_items 3\n"));
        assert!(text.contains("camp_miss_rate{policy=\"camp(p=5)\"} 0.25\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut exp = Exposition::new();
        exp.int_value("m", &[("k", "a\"b\\c")], 1);
        assert_eq!(exp.render(), "m{k=\"a\\\"b\\\\c\"} 1\n");
    }

    #[test]
    fn summary_emits_quantiles_sum_count() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let mut exp = Exposition::new();
        exp.family("lat_us", "latency", MetricKind::Summary);
        exp.summary("lat_us", &[("cmd", "get")], &h.snapshot());
        let text = exp.render();
        for q in ["0.5", "0.9", "0.99", "0.999"] {
            assert!(
                text.contains(&format!("lat_us{{cmd=\"get\",quantile=\"{q}\"}}")),
                "{text}"
            );
        }
        assert!(text.contains("lat_us_sum{cmd=\"get\"} 5050\n"), "{text}");
        assert!(text.contains("lat_us_count{cmd=\"get\"} 100\n"), "{text}");
    }
}
