//! The file-based workflow: generate a trace, persist it, validate its
//! shape, and replay it through the simulator — the loop a researcher
//! evaluating their own traces would follow (swap step 1 for your own
//! trace file in the same `key size cost [trace_id]` text format).
//!
//! Run with `cargo run --release --example trace_pipeline`.

use camp::core::{Camp, Precision};
use camp::policies::{EvictionPolicy, Gds, Lru};
use camp::sim::simulate;
use camp::workload::analysis::{cost_report, locality_report, skew_report};
use camp::workload::{BgConfig, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate (or bring your own trace file).
    let path = std::env::temp_dir().join("camp-pipeline.trace");
    let trace = BgConfig::paper_scaled(10_000, 200_000, 7).generate();
    trace.save(&path)?;
    println!("wrote {} rows to {}", trace.len(), path.display());

    // 2. Reload: everything downstream works off the file alone.
    let trace = Trace::load(&path)?;

    // 3. Validate the workload shape before trusting any results.
    let skew = skew_report(&trace);
    let cost = cost_report(&trace);
    let locality = locality_report(&trace);
    println!(
        "shape: top-20% keys take {:.1}% of requests, {} distinct costs, \
         {:.0}% re-references",
        skew.top20_request_share * 100.0,
        cost.distinct_costs,
        locality.rereference_share * 100.0,
    );
    assert!(cost.costs_stable_per_key, "per-key cost stability violated");

    // 4. Simulate at a quarter of the working set.
    let capacity = trace.stats().unique_bytes / 4;
    let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
        Box::new(Camp::<u64, ()>::new(capacity, Precision::Bits(5))),
        Box::new(Gds::new(capacity)),
        Box::new(Lru::new(capacity)),
    ];
    println!("\n{:<12} {:>10} {:>10}", "policy", "cost-miss", "miss-rate");
    for policy in &mut policies {
        let report = simulate(policy.as_mut(), &trace);
        println!(
            "{:<12} {:>10.4} {:>10.4}",
            report.policy,
            report.metrics.cost_miss_ratio(),
            report.metrics.miss_rate(),
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
