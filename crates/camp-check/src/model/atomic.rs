//! Modeled atomic types. Each wraps the corresponding `std` atomic: outside
//! a model execution every operation falls straight through to `std` (so a
//! `--cfg camp_check` build still runs ordinary tests correctly), while
//! inside an execution the operation becomes a scheduling point routed
//! through the kernel, and the `std` value is kept mirrored to the newest
//! store in modification order (the kernel serializes vthreads, so the
//! mirror is race-free by construction).
//!
//! Locations are registered lazily, keyed on the atomic's address, and
//! seeded from the mirrored `std` value — so atomics created before the
//! execution started (e.g. inside a structure built by the harness closure)
//! join the model transparently on first touch.
//!
//! Modeled subset: the operations the workspace's lock-free code actually
//! uses (`load`/`store`/`swap`/`compare_exchange[_weak]`/`fetch_update`/
//! `fetch_add`/`fetch_sub`/`fetch_max`). `compare_exchange_weak` never
//! spuriously fails under the model (documented approximation: it only
//! narrows the behavior set of code that must already tolerate failure).

use std::sync::atomic::Ordering;

use crate::model::exec;
use crate::model::kernel::{Op, OpOutcome, RmwKind};

macro_rules! model_atomic {
    ($name:ident, $raw:ty, $std:ty, $mask:expr, $from:expr, $into:expr) => {
        #[derive(Debug, Default)]
        pub struct $name {
            std: $std,
        }

        impl $name {
            pub const fn new(v: $raw) -> Self {
                Self {
                    std: <$std>::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            // ordering: Relaxed — seeding the model location / reading the
            // mirror; vthreads are serialized by the kernel lock, so there
            // is no concurrent access to order against.
            fn init(&self) -> u64 {
                $into(self.std.load(Ordering::Relaxed))
            }

            fn mirror(&self, v: u64) {
                // ordering: Relaxed — mirror write under kernel
                // serialization (see above).
                self.std.store($from(v), Ordering::Relaxed);
            }

            pub fn load(&self, ord: Ordering) -> $raw {
                match exec::current() {
                    Some(h) => match exec::schedule_op(
                        &h,
                        Op::Load {
                            addr: self.addr(),
                            init: self.init(),
                            ord,
                        },
                    ) {
                        OpOutcome::Value(v) => $from(v),
                        _ => unreachable!("load returned non-value"),
                    },
                    None => self.std.load(ord),
                }
            }

            pub fn store(&self, val: $raw, ord: Ordering) {
                match exec::current() {
                    Some(h) => {
                        exec::schedule_op(
                            &h,
                            Op::Store {
                                addr: self.addr(),
                                init: self.init(),
                                val: $into(val),
                                ord,
                            },
                        );
                        self.mirror($into(val));
                    }
                    None => self.std.store(val, ord),
                }
            }

            fn rmw(&self, kind: RmwKind, ord: Ordering) -> $raw {
                match exec::current() {
                    Some(h) => match exec::schedule_op(
                        &h,
                        Op::Rmw {
                            addr: self.addr(),
                            init: self.init(),
                            kind,
                            mask: $mask,
                            ord,
                        },
                    ) {
                        OpOutcome::Rmw { old, new } => {
                            self.mirror(new);
                            $from(old)
                        }
                        _ => unreachable!("rmw returned non-rmw outcome"),
                    },
                    None => match kind {
                        RmwKind::Add(n) => self.std.fetch_add($from(n), ord),
                        RmwKind::Sub(n) => self.std.fetch_sub($from(n), ord),
                        RmwKind::Max(n) => self.std.fetch_max($from(n), ord),
                        RmwKind::Swap(n) => self.std.swap($from(n), ord),
                    },
                }
            }

            pub fn fetch_add(&self, n: $raw, ord: Ordering) -> $raw {
                self.rmw(RmwKind::Add($into(n)), ord)
            }

            pub fn fetch_sub(&self, n: $raw, ord: Ordering) -> $raw {
                self.rmw(RmwKind::Sub($into(n)), ord)
            }

            pub fn fetch_max(&self, n: $raw, ord: Ordering) -> $raw {
                self.rmw(RmwKind::Max($into(n)), ord)
            }

            pub fn swap(&self, n: $raw, ord: Ordering) -> $raw {
                self.rmw(RmwKind::Swap($into(n)), ord)
            }

            pub fn compare_exchange(
                &self,
                expect: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                match exec::current() {
                    Some(h) => match exec::schedule_op(
                        &h,
                        Op::Cas {
                            addr: self.addr(),
                            init: self.init(),
                            expect: $into(expect),
                            new: $into(new),
                            success,
                            failure,
                        },
                    ) {
                        OpOutcome::Cas(Ok(old)) => {
                            self.mirror($into(new));
                            Ok($from(old))
                        }
                        OpOutcome::Cas(Err(old)) => Err($from(old)),
                        _ => unreachable!("cas returned non-cas outcome"),
                    },
                    None => self.std.compare_exchange(expect, new, success, failure),
                }
            }

            pub fn compare_exchange_weak(
                &self,
                expect: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                self.compare_exchange(expect, new, success, failure)
            }

            pub fn fetch_update<F>(
                &self,
                set: Ordering,
                fetch: Ordering,
                mut f: F,
            ) -> Result<$raw, $raw>
            where
                F: FnMut($raw) -> Option<$raw>,
            {
                // Same load + CAS loop std documents; each iteration is a
                // pair of model scheduling points, which is exactly the
                // window a checker harness wants to preempt in.
                let mut cur = self.load(fetch);
                loop {
                    let Some(next) = f(cur) else { return Err(cur) };
                    match self.compare_exchange(cur, next, set, fetch) {
                        Ok(old) => return Ok(old),
                        Err(seen) => cur = seen,
                    }
                }
            }
        }
    };
}

model_atomic!(
    AtomicU8,
    u8,
    std::sync::atomic::AtomicU8,
    u8::MAX as u64,
    |v: u64| v as u8,
    |v: u8| v as u64
);
model_atomic!(
    AtomicU32,
    u32,
    std::sync::atomic::AtomicU32,
    u32::MAX as u64,
    |v: u64| v as u32,
    |v: u32| v as u64
);
model_atomic!(
    AtomicU64,
    u64,
    std::sync::atomic::AtomicU64,
    u64::MAX,
    |v: u64| v,
    |v: u64| v
);
model_atomic!(
    AtomicUsize,
    usize,
    std::sync::atomic::AtomicUsize,
    usize::MAX as u64,
    |v: u64| v as usize,
    |v: usize| v as u64
);

/// `AtomicBool` is its own impl (bool <-> u64 conversion, no arithmetic).
#[derive(Debug, Default)]
pub struct AtomicBool {
    std: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            std: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn init(&self) -> u64 {
        // ordering: Relaxed — model-location seed; serialized by the kernel.
        self.std.load(Ordering::Relaxed) as u64
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match exec::current() {
            Some(h) => match exec::schedule_op(
                &h,
                Op::Load {
                    addr: self.addr(),
                    init: self.init(),
                    ord,
                },
            ) {
                OpOutcome::Value(v) => v != 0,
                _ => unreachable!("load returned non-value"),
            },
            None => self.std.load(ord),
        }
    }

    pub fn store(&self, val: bool, ord: Ordering) {
        match exec::current() {
            Some(h) => {
                exec::schedule_op(
                    &h,
                    Op::Store {
                        addr: self.addr(),
                        init: self.init(),
                        val: val as u64,
                        ord,
                    },
                );
                // ordering: Relaxed — mirror write under kernel serialization.
                self.std.store(val, Ordering::Relaxed);
            }
            None => self.std.store(val, ord),
        }
    }

    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match exec::current() {
            Some(h) => match exec::schedule_op(
                &h,
                Op::Rmw {
                    addr: self.addr(),
                    init: self.init(),
                    kind: RmwKind::Swap(val as u64),
                    mask: 1,
                    ord,
                },
            ) {
                OpOutcome::Rmw { old, new } => {
                    // ordering: Relaxed — mirror write under kernel serialization.
                    self.std.store(new != 0, Ordering::Relaxed);
                    old != 0
                }
                _ => unreachable!("rmw returned non-rmw outcome"),
            },
            None => self.std.swap(val, ord),
        }
    }
}

/// An atomic fence: a scheduling point with fence semantics under the
/// model, a plain `std` fence otherwise.
pub fn fence(ord: Ordering) {
    match exec::current() {
        Some(h) => {
            exec::schedule_op(&h, Op::Fence { ord });
        }
        None => std::sync::atomic::fence(ord),
    }
}
