//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] threaded into
//! [`ServerOptions`](crate::server::ServerOptions) (or the daemon's
//! `--chaos` flag) makes the server misbehave *on purpose*: connections
//! drop before a response is written, responses are delayed, and commands
//! are answered with `SERVER_ERROR injected fault` — all driven by a
//! seeded [`Rng64`], so a chaos run is reproducible without OS-level
//! tooling (no `tc`, no `iptables`, no kernel fault injection).
//!
//! # Spec grammar
//!
//! Comma-separated `key=value` clauses, all optional:
//!
//! ```text
//! drop=P          probability per command of dropping the connection
//!                 before the response is written (0 <= P <= 1)
//! delay=DUR[@P]   inject a DUR sleep before responding, with probability
//!                 P (default 1). DUR takes us/ms/s suffixes: 500us, 1ms, 2s
//! err=P           probability per command of replying
//!                 "SERVER_ERROR injected fault" instead of executing
//! iowrite=P       probability per persistence-log write of an injected
//!                 short write + EIO (see [`crate::persist`])
//! fsync=P         probability per persistence-log fsync of a failure
//! enospc=P        probability per persistence-log write of ENOSPC
//! seed=N          RNG seed (default 0xC0FFEE); each connection derives
//!                 its own stream from seed ^ connection id
//! ```
//!
//! Example: `drop=0.02,delay=1ms@0.5,err=0.01,seed=7`.
//!
//! The three disk clauses only take effect when the server runs with
//! `--data-dir`: they drive the [`FaultFs`](crate::persist::FaultFs)
//! backend under the append-only log, exercising the degraded-state
//! machine the same way `drop`/`err`/`delay` exercise the network path.
//!
//! Faults are decided *after* a `set`'s data block is read, so an injected
//! error or delay never desynchronizes the protocol stream; only `drop`
//! ends the connection (which is exactly what it simulates).

use std::str::FromStr;
use std::time::Duration;

use camp_core::rng::Rng64;

/// Default RNG seed when the spec omits `seed=`.
const DEFAULT_SEED: u64 = 0xC0_FFEE;

/// A deterministic fault-injection plan (see the module docs for the spec
/// grammar).
///
/// # Examples
///
/// ```
/// use camp_kvs::fault::FaultPlan;
///
/// let plan: FaultPlan = "drop=0.02,delay=1ms@0.5,err=0.01".parse()?;
/// assert_eq!(plan.drop_rate, 0.02);
/// assert_eq!(plan.delay.as_micros(), 1000);
/// assert_eq!(plan.delay_rate, 0.5);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability per command of dropping the connection pre-response.
    pub drop_rate: f64,
    /// The injected delay duration (zero = no delay clause).
    pub delay: Duration,
    /// Probability per command of injecting `delay`.
    pub delay_rate: f64,
    /// Probability per command of a forced `SERVER_ERROR` reply.
    pub error_rate: f64,
    /// Probability per persistence-log write of a short write + `EIO`.
    pub iowrite_rate: f64,
    /// Probability per persistence-log fsync of a failure.
    pub fsync_fail_rate: f64,
    /// Probability per persistence-log write of `ENOSPC`.
    pub enospc_rate: f64,
    /// Base RNG seed; per-connection streams derive from it.
    pub seed: u64,
}

impl FaultPlan {
    /// Whether any disk clause (`iowrite`/`fsync`/`enospc`) is active —
    /// i.e. whether the persistence layer should wrap its backend in
    /// [`FaultFs`](crate::persist::FaultFs).
    #[must_use]
    pub fn has_disk_faults(&self) -> bool {
        self.iowrite_rate > 0.0 || self.fsync_fail_rate > 0.0 || self.enospc_rate > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            drop_rate: 0.0,
            delay: Duration::ZERO,
            delay_rate: 0.0,
            error_rate: 0.0,
            iowrite_rate: 0.0,
            fsync_fail_rate: 0.0,
            enospc_rate: 0.0,
            seed: DEFAULT_SEED,
        }
    }
}

fn parse_probability(text: &str, clause: &str) -> Result<f64, String> {
    let p: f64 = text
        .parse()
        .map_err(|_| format!("bad probability in `{clause}`"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability out of [0, 1] in `{clause}`"));
    }
    Ok(p)
}

fn parse_duration(text: &str, clause: &str) -> Result<Duration, String> {
    let (digits, unit): (&str, fn(u64) -> Duration) = if let Some(d) = text.strip_suffix("us") {
        (d, Duration::from_micros)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, Duration::from_millis)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, Duration::from_secs)
    } else {
        return Err(format!("duration needs a us/ms/s suffix in `{clause}`"));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration in `{clause}`"))?;
    Ok(unit(n))
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{clause}`"))?;
            match key {
                "drop" => plan.drop_rate = parse_probability(value, clause)?,
                "err" => plan.error_rate = parse_probability(value, clause)?,
                "iowrite" => plan.iowrite_rate = parse_probability(value, clause)?,
                "fsync" => plan.fsync_fail_rate = parse_probability(value, clause)?,
                "enospc" => plan.enospc_rate = parse_probability(value, clause)?,
                "delay" => match value.split_once('@') {
                    Some((dur, p)) => {
                        plan.delay = parse_duration(dur, clause)?;
                        plan.delay_rate = parse_probability(p, clause)?;
                    }
                    None => {
                        plan.delay = parse_duration(value, clause)?;
                        plan.delay_rate = 1.0;
                    }
                },
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("bad seed in `{clause}`"))?;
                }
                other => return Err(format!("unknown fault clause `{other}`")),
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drop={},delay={}us@{},err={},iowrite={},fsync={},enospc={},seed={}",
            self.drop_rate,
            self.delay.as_micros(),
            self.delay_rate,
            self.error_rate,
            self.iowrite_rate,
            self.fsync_fail_rate,
            self.enospc_rate,
            self.seed
        )
    }
}

/// One fault decision for one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute normally.
    None,
    /// Sleep for the plan's delay, then execute normally.
    Delay(Duration),
    /// Reply `SERVER_ERROR injected fault` without executing.
    Error,
    /// Close the connection without responding.
    Drop,
}

/// Per-connection fault state: an independent, deterministic RNG stream.
#[derive(Debug)]
pub struct FaultState {
    rng: Rng64,
}

impl FaultState {
    /// Derives connection `conn_id`'s stream from the plan's seed.
    #[must_use]
    pub fn new(plan: &FaultPlan, conn_id: u64) -> FaultState {
        FaultState {
            rng: Rng64::seed_from_u64(plan.seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Rolls the dice for one command. At most one fault fires per
    /// command; `drop` outranks `err`, which outranks `delay`.
    pub fn decide(&mut self, plan: &FaultPlan) -> FaultAction {
        if plan.drop_rate > 0.0 && self.rng.chance(plan.drop_rate) {
            return FaultAction::Drop;
        }
        if plan.error_rate > 0.0 && self.rng.chance(plan.error_rate) {
            return FaultAction::Error;
        }
        if plan.delay_rate > 0.0 && self.rng.chance(plan.delay_rate) {
            return FaultAction::Delay(plan.delay);
        }
        FaultAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let plan: FaultPlan = "drop=0.02,delay=1ms@0.5,err=0.01,seed=7".parse().unwrap();
        assert_eq!(plan.drop_rate, 0.02);
        assert_eq!(plan.delay, Duration::from_millis(1));
        assert_eq!(plan.delay_rate, 0.5);
        assert_eq!(plan.error_rate, 0.01);
        assert_eq!(plan.seed, 7);
    }

    #[test]
    fn delay_without_probability_fires_always() {
        let plan: FaultPlan = "delay=500us".parse().unwrap();
        assert_eq!(plan.delay, Duration::from_micros(500));
        assert_eq!(plan.delay_rate, 1.0);
        let mut state = FaultState::new(&plan, 3);
        for _ in 0..32 {
            assert_eq!(
                state.decide(&plan),
                FaultAction::Delay(Duration::from_micros(500))
            );
        }
    }

    #[test]
    fn parses_disk_fault_clauses() {
        let plan: FaultPlan = "iowrite=0.1,fsync=0.2,enospc=0.3,seed=11".parse().unwrap();
        assert_eq!(plan.iowrite_rate, 0.1);
        assert_eq!(plan.fsync_fail_rate, 0.2);
        assert_eq!(plan.enospc_rate, 0.3);
        assert_eq!(plan.seed, 11);
        assert!(plan.has_disk_faults());
        // Network clauses stay at their defaults.
        assert_eq!(plan.drop_rate, 0.0);
        assert_eq!(plan.error_rate, 0.0);
        // A pure-network plan reports no disk faults.
        let net: FaultPlan = "drop=0.5,err=0.5".parse().unwrap();
        assert!(!net.has_disk_faults());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("drop=1.5".parse::<FaultPlan>().is_err());
        assert!("drop=abc".parse::<FaultPlan>().is_err());
        assert!("delay=10".parse::<FaultPlan>().is_err());
        assert!("delay=1ms@2".parse::<FaultPlan>().is_err());
        assert!("bogus=1".parse::<FaultPlan>().is_err());
        assert!("drop".parse::<FaultPlan>().is_err());
        assert!("iowrite=2".parse::<FaultPlan>().is_err());
        assert!("fsync=x".parse::<FaultPlan>().is_err());
        assert!("enospc=-0.1".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn empty_spec_is_a_no_op_plan() {
        let plan: FaultPlan = "".parse().unwrap();
        assert_eq!(plan, FaultPlan::default());
        let mut state = FaultState::new(&plan, 0);
        for _ in 0..64 {
            assert_eq!(state.decide(&plan), FaultAction::None);
        }
    }

    #[test]
    fn streams_are_deterministic_per_connection() {
        let plan: FaultPlan = "drop=0.3,err=0.3,seed=99".parse().unwrap();
        let roll = |conn_id: u64| {
            let mut state = FaultState::new(&plan, conn_id);
            (0..64).map(|_| state.decide(&plan)).collect::<Vec<_>>()
        };
        assert_eq!(roll(1), roll(1), "same seed + conn id => same faults");
        assert_ne!(
            roll(1),
            roll(2),
            "different connections see different faults"
        );
        let actions = roll(1);
        assert!(actions.contains(&FaultAction::Drop));
        assert!(actions.contains(&FaultAction::Error));
    }

    #[test]
    fn display_round_trips() {
        let plan: FaultPlan = "drop=0.02,delay=1ms@0.5,err=0.01,seed=7".parse().unwrap();
        let round: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, round);
        let disk: FaultPlan = "iowrite=0.25,fsync=0.5,enospc=0.125,seed=3"
            .parse()
            .unwrap();
        let round: FaultPlan = disk.to_string().parse().unwrap();
        assert_eq!(disk, round);
    }
}
