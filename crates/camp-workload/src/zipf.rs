//! Skewed key-popularity samplers.
//!
//! The paper's BG benchmark is configured so that "approximately 70% of
//! requests reference 20% of keys". Two samplers reproduce that kind of
//! skew: a classic [`Zipf`] sampler (the YCSB/Gray construction) and an
//! explicit two-segment [`HotCold`] sampler that hits the 70/20 target
//! exactly. Both draw from `0..n` and are wrapped in a seeded random
//! permutation ([`Permutation`]) so that popularity rank is decoupled from
//! key-id order.

use camp_core::rng::Rng64;

/// A Zipf-distributed sampler over `0..n` with exponent `theta`.
///
/// Item `i` is drawn with probability proportional to `1/(i+1)^theta`. The
/// implementation precomputes the harmonic normalizer once (O(n)) and then
/// samples in O(1) using the standard YCSB/Gray closed form.
///
/// # Examples
///
/// ```
/// use camp_core::rng::Rng64;
/// use camp_workload::zipf::Zipf;
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = Rng64::seed_from_u64(1);
/// let draws: Vec<u64> = (0..1000).map(|_| zipf.sample(&mut rng)).collect();
/// // Rank 0 is the most popular item by a wide margin.
/// let zeros = draws.iter().filter(|&&d| d == 0).count();
/// assert!(zeros > 50);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    zetan: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `theta` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            zetan,
            zeta2,
            alpha,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The key-space size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let u: f64 = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Unused normalizer accessor kept for diagnostics.
    #[must_use]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A two-segment sampler: a fraction `hot_fraction` of the ranks receives a
/// fraction `hot_probability` of the draws, uniformly within each segment.
///
/// With the defaults (`0.2`, `0.7`) this reproduces the paper's "70% of
/// requests reference 20% of keys" exactly in expectation.
///
/// # Examples
///
/// ```
/// use camp_core::rng::Rng64;
/// use camp_workload::zipf::HotCold;
///
/// let sampler = HotCold::paper_default(1000);
/// let mut rng = Rng64::seed_from_u64(7);
/// let hot_draws = (0..10_000)
///     .filter(|_| sampler.sample(&mut rng) < 200)
///     .count();
/// assert!((6500..7500).contains(&hot_draws));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotCold {
    n: u64,
    hot_keys: u64,
    hot_probability: f64,
}

impl HotCold {
    /// Creates a sampler over `0..n` where `hot_fraction` of the ranks get
    /// `hot_probability` of the draws.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or either fraction is outside `(0, 1)`.
    #[must_use]
    pub fn new(n: u64, hot_fraction: f64, hot_probability: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!((0.0..=1.0).contains(&hot_fraction), "bad hot fraction");
        assert!(
            (0.0..=1.0).contains(&hot_probability),
            "bad hot probability"
        );
        let hot_keys = ((n as f64 * hot_fraction).ceil() as u64).clamp(1, n);
        HotCold {
            n,
            hot_keys,
            hot_probability,
        }
    }

    /// The paper's configuration: 70% of requests to 20% of keys.
    #[must_use]
    pub fn paper_default(n: u64) -> Self {
        HotCold::new(n, 0.2, 0.7)
    }

    /// The key-space size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of ranks in the hot segment.
    #[must_use]
    pub fn hot_keys(&self) -> u64 {
        self.hot_keys
    }

    /// Draws one rank in `0..n` (ranks below `hot_keys()` are hot).
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let hot = rng.chance(self.hot_probability);
        if hot || self.hot_keys == self.n {
            rng.range_u64(0, self.hot_keys)
        } else {
            rng.range_u64(self.hot_keys, self.n)
        }
    }
}

/// A seeded random permutation of `0..n`, used to scramble popularity ranks
/// into key ids so that "key 0 is hottest" artifacts cannot leak into
/// policies.
///
/// # Examples
///
/// ```
/// use camp_workload::zipf::Permutation;
///
/// let perm = Permutation::new(10, 42);
/// let mut image: Vec<u64> = (0..10).map(|i| perm.apply(i)).collect();
/// image.sort_unstable();
/// assert_eq!(image, (0..10).collect::<Vec<u64>>());
/// ```
#[derive(Debug, Clone)]
pub struct Permutation {
    forward: Vec<u32>,
}

impl Permutation {
    /// Builds a Fisher–Yates permutation of `0..n` from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(n: u64, seed: u64) -> Self {
        let n32 = u32::try_from(n).expect("permutation domain exceeds u32::MAX");
        let mut forward: Vec<u32> = (0..n32).collect();
        let mut rng = Rng64::seed_from_u64(seed);
        rng.shuffle(&mut forward);
        Permutation { forward }
    }

    /// Maps a rank to its scrambled key id.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the domain.
    #[must_use]
    pub fn apply(&self, rank: u64) -> u64 {
        u64::from(self.forward[usize::try_from(rank).expect("rank out of range")])
    }

    /// Domain size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the domain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_heavily_skewed() {
        let zipf = Zipf::new(10_000, 0.99);
        let mut rng = Rng64::seed_from_u64(3);
        let mut counts = vec![0u64; 10_000];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        // Top 1% of ranks should take a large share of draws.
        let top: u64 = counts[..100].iter().sum();
        assert!(top > 30_000, "top-1% share too small: {top}");
        // Monotone-ish: rank 0 beats rank 100 beats rank 5000.
        assert!(counts[0] > counts[100]);
        assert!(counts[100] > counts[5000]);
    }

    #[test]
    fn zipf_stays_in_range() {
        for n in [1u64, 2, 10, 1000] {
            let zipf = Zipf::new(n, 0.5);
            let mut rng = Rng64::seed_from_u64(9);
            for _ in 0..1000 {
                assert!(zipf.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn hot_cold_hits_the_70_20_target() {
        let s = HotCold::paper_default(10_000);
        assert_eq!(s.hot_keys(), 2000);
        let mut rng = Rng64::seed_from_u64(11);
        let trials = 200_000;
        let hot = (0..trials)
            .filter(|_| s.sample(&mut rng) < s.hot_keys())
            .count();
        let share = hot as f64 / trials as f64;
        assert!((share - 0.7).abs() < 0.01, "hot share {share}");
    }

    #[test]
    fn hot_cold_covers_the_cold_range_too() {
        let s = HotCold::new(100, 0.2, 0.7);
        let mut rng = Rng64::seed_from_u64(5);
        let mut seen_cold = false;
        for _ in 0..1000 {
            if s.sample(&mut rng) >= 20 {
                seen_cold = true;
            }
        }
        assert!(seen_cold);
    }

    #[test]
    fn permutation_is_a_bijection_and_deterministic() {
        let a = Permutation::new(1000, 77);
        let b = Permutation::new(1000, 77);
        let c = Permutation::new(1000, 78);
        let mut image: Vec<u64> = (0..1000).map(|i| a.apply(i)).collect();
        assert_eq!(
            (0..1000).map(|i| b.apply(i)).collect::<Vec<_>>(),
            image,
            "same seed must give the same permutation"
        );
        assert_ne!((0..1000).map(|i| c.apply(i)).collect::<Vec<_>>(), image);
        image.sort_unstable();
        assert_eq!(image, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 0.5);
    }
}
