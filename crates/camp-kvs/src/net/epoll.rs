//! A minimal, dependency-free `epoll(7)` + socket syscall wrapper: the
//! readiness and accept engine under the reactor.
//!
//! The repo builds offline with no external crates (no `libc`, no `mio`),
//! so this module declares the kernel entry points it needs —
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`, `close`, plus the listener
//! family `socket`/`setsockopt`/`bind`/`listen`/`getsockname`/`accept4` —
//! directly against the C runtime that `std` already links, exactly the
//! way [`crate::signals`] declares its self-pipe syscalls. Everything
//! above this file (the reactor, the connection state machine, the timer
//! wheel) is safe code: worker wake-ups ride on `std`'s `UnixStream`
//! pairs, and scatter-gather flushes ride on `std`'s `write_vectored`
//! (which is the `writev(2)` syscall for a `TcpStream`).
//!
//! This is one of exactly two modules in the workspace allowed to use
//! `unsafe` (the other is `signals.rs`); camp-lint's
//! `unsafe-outside-signals` rule enforces the allowlist path-exactly.
//!
//! The wrappers are deliberately thin: an [`Epoll`] owns the epoll file
//! descriptor, `add`/`modify`/`delete` manage interest, and [`Epoll::wait`]
//! fills a caller-owned event slice. Level-triggered semantics only — the
//! reactor drains sockets to `EAGAIN` on every readiness event, so
//! edge-triggered mode would buy nothing and cost correctness headroom.
//! A [`ReusePortListener`] is a nonblocking `SO_REUSEPORT` listening
//! socket: binding one per worker lets the kernel spread incoming
//! connections across workers with no accept thread, no handoff mutex,
//! and no wake-up write on the accept path.
#![allow(unsafe_code)]

use std::io;
use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};

/// `EPOLL_CLOEXEC` for [`epoll_create1`].
const EPOLL_CLOEXEC: i32 = 0o200_0000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Readable interest/readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable interest/readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel declares it
/// packed (a 12-byte struct with an unaligned `u64`); on other
/// architectures it uses natural alignment — the `cfg_attr` mirrors the
/// kernel's `EPOLL_PACKED` attribute exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN | ...`).
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    /// The readiness bits (copied out of the possibly-packed field).
    #[must_use]
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The registration token (copied out of the possibly-packed field).
    #[must_use]
    pub fn token(&self) -> u64 {
        self.data
    }
}

/// `AF_INET` / `AF_INET6` socket domains.
const AF_INET: i32 = 2;
const AF_INET6: i32 = 10;
/// `SOCK_STREAM` plus the flag bits `socket(2)`/`accept4(2)` accept.
const SOCK_STREAM: i32 = 1;
const SOCK_NONBLOCK: i32 = 0o4000;
const SOCK_CLOEXEC: i32 = 0o200_0000;
/// `setsockopt` level/option numbers (Linux generic socket level).
const SOL_SOCKET: i32 = 1;
const SO_REUSEADDR: i32 = 2;
const SO_REUSEPORT: i32 = 15;
/// Listen backlog; the kernel clamps to `somaxconn`.
const LISTEN_BACKLOG: i32 = 1024;
/// Large enough for `sockaddr_in` (16 bytes) and `sockaddr_in6` (28).
const SOCKADDR_BUF: usize = 32;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
    fn bind(fd: i32, addr: *const u8, addrlen: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
    fn getsockname(fd: i32, addr: *mut u8, addrlen: *mut u32) -> i32;
    fn accept4(fd: i32, addr: *mut u8, addrlen: *mut u32, flags: i32) -> i32;
}

/// Serializes `addr` into the kernel's `sockaddr_in`/`sockaddr_in6` byte
/// layout (family in host order, port and addresses in network order);
/// returns the encoded length.
fn encode_sockaddr(addr: SocketAddr, buf: &mut [u8; SOCKADDR_BUF]) -> u32 {
    match addr {
        SocketAddr::V4(v4) => {
            buf[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&v4.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v4.ip().octets());
            16
        }
        SocketAddr::V6(v6) => {
            buf[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&v6.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
            buf[8..24].copy_from_slice(&v6.ip().octets());
            buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            28
        }
    }
}

/// Inverse of [`encode_sockaddr`] for `getsockname` results.
fn decode_sockaddr(buf: &[u8; SOCKADDR_BUF]) -> Option<SocketAddr> {
    let family = u16::from_ne_bytes([buf[0], buf[1]]);
    let port = u16::from_be_bytes([buf[2], buf[3]]);
    if family == AF_INET as u16 {
        let octets: [u8; 4] = buf[4..8].try_into().ok()?;
        Some(SocketAddr::from((Ipv4Addr::from(octets), port)))
    } else if family == AF_INET6 as u16 {
        let octets: [u8; 16] = buf[8..24].try_into().ok()?;
        Some(SocketAddr::from((Ipv6Addr::from(octets), port)))
    } else {
        None
    }
}

/// A nonblocking `SO_REUSEPORT` listening socket.
///
/// Several listeners may bind the same address; the kernel hashes each
/// incoming connection to one of them, so a reactor that gives every
/// worker its own listener gets kernel-balanced accept with no shared
/// accept thread. Accepted sockets are born nonblocking and close-on-exec
/// (`accept4` flags), so the hot accept path costs exactly one syscall.
///
/// # Examples
///
/// ```no_run
/// use camp_kvs::net::epoll::ReusePortListener;
///
/// let first = ReusePortListener::bind("127.0.0.1:0".parse().unwrap())?;
/// // Bind a second listener to the same (ephemeral) port.
/// let second = ReusePortListener::bind(first.local_addr())?;
/// assert_eq!(first.local_addr(), second.local_addr());
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct ReusePortListener {
    fd: RawFd,
    local: SocketAddr,
}

impl ReusePortListener {
    /// Creates a nonblocking listener on `addr` with `SO_REUSEADDR` and
    /// `SO_REUSEPORT` set (port 0 binds an ephemeral port — read it back
    /// with [`ReusePortListener::local_addr`] to bind siblings).
    ///
    /// # Errors
    ///
    /// Returns the failing syscall's error (`socket`, `setsockopt`,
    /// `bind`, `listen`, or `getsockname`).
    pub fn bind(addr: SocketAddr) -> io::Result<ReusePortListener> {
        let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
        // SAFETY: socket takes three plain words and returns an fd or -1.
        let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // From here on the fd is owned: any early return drops `listener`,
        // whose Drop closes it.
        let mut listener = ReusePortListener { fd, local: addr };
        for option in [SO_REUSEADDR, SO_REUSEPORT] {
            let one: i32 = 1;
            // SAFETY: `one` outlives the call and optlen matches its size.
            let rc = unsafe { setsockopt(fd, SOL_SOCKET, option, &one, 4) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
        }
        let mut encoded = [0u8; SOCKADDR_BUF];
        let len = encode_sockaddr(addr, &mut encoded);
        // SAFETY: `encoded` holds a valid sockaddr of `len` bytes and
        // outlives the call (the kernel copies it).
        if unsafe { bind(fd, encoded.as_ptr(), len) } != 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: listen takes two plain words.
        if unsafe { listen(fd, LISTEN_BACKLOG) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let mut out = [0u8; SOCKADDR_BUF];
        let mut out_len = SOCKADDR_BUF as u32;
        // SAFETY: `out`/`out_len` are valid for writes of the advertised
        // capacity for the duration of the call.
        if unsafe { getsockname(fd, out.as_mut_ptr(), &mut out_len) } != 0 {
            return Err(io::Error::last_os_error());
        }
        listener.local = decode_sockaddr(&out).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "unrecognized sockaddr family")
        })?;
        Ok(listener)
    }

    /// The bound address (with the real port after an ephemeral bind).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Accepts one pending connection, already nonblocking and
    /// close-on-exec. Returns `None` when the accept queue is empty
    /// (`EAGAIN`) or the accept was interrupted/aborted before completing
    /// (`EINTR`/`ECONNABORTED` — level-triggered epoll re-reports anything
    /// still pending).
    ///
    /// # Errors
    ///
    /// Propagates hard `accept4` errors (fd exhaustion, listener closed).
    pub fn accept(&self) -> io::Result<Option<TcpStream>> {
        // SAFETY: null peer-address pointers are allowed (we do not need
        // the peer address); flags only set fd modes on the new socket.
        let fd = unsafe {
            accept4(
                self.fd,
                std::ptr::null_mut(),
                std::ptr::null_mut(),
                SOCK_NONBLOCK | SOCK_CLOEXEC,
            )
        };
        if fd < 0 {
            let err = io::Error::last_os_error();
            return match err.kind() {
                io::ErrorKind::WouldBlock
                | io::ErrorKind::Interrupted
                | io::ErrorKind::ConnectionAborted => Ok(None),
                _ => Err(err),
            };
        }
        // SAFETY: accept4 returned a fresh connected socket fd; ownership
        // transfers wholly to the TcpStream (nothing else closes it).
        Ok(Some(unsafe { TcpStream::from_raw_fd(fd) }))
    }
}

impl AsRawFd for ReusePortListener {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for ReusePortListener {
    fn drop(&mut self) {
        // SAFETY: `fd` is the listening socket this struct owns; Drop runs
        // once, so no double-close.
        unsafe {
            let _ = close(self.fd);
        }
    }
}

/// An owned epoll instance.
///
/// # Examples
///
/// ```no_run
/// use camp_kvs::net::epoll::{Epoll, EpollEvent, EPOLLIN};
/// use std::os::fd::AsRawFd;
///
/// let epoll = Epoll::new()?;
/// let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
/// epoll.add(listener.as_raw_fd(), EPOLLIN, 7)?;
/// let mut events = [EpollEvent::default(); 64];
/// let n = epoll.wait(&mut events, 100)?; // 100 ms timeout
/// for event in &events[..n] {
///     assert_eq!(event.token(), 7);
/// }
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Returns the `epoll_create1` error (fd exhaustion, kernel limits).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes a flags word and returns an fd or -1;
        // no pointers cross the boundary.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        let ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event
        };
        // SAFETY: `event` outlives the call (the kernel copies it before
        // returning); DEL passes a null pointer, which the kernel accepts.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, ptr) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest bits and token.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error (e.g. the fd is already registered).
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes a registered fd's interest bits (and token).
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error (e.g. the fd is not registered).
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`. Closing an fd removes it implicitly; an explicit
    /// delete is only needed when the fd outlives its registration.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for up to `timeout_ms` milliseconds (−1 = forever) and fills
    /// `events` with ready registrations; returns how many. A signal
    /// interruption (`EINTR`) reports zero events instead of an error, so
    /// callers re-derive their timeout and re-enter — the reactor loop does
    /// exactly that.
    ///
    /// # Errors
    ///
    /// Returns any `epoll_wait` error other than `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let capacity = i32::try_from(events.len()).unwrap_or(i32::MAX).max(1);
        // SAFETY: `events` is a valid, writable slice of at least
        // `capacity` entries for the duration of the call.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), capacity, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(usize::try_from(n).unwrap_or(0))
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is the epoll fd this struct owns; double-close is
        // impossible because Drop runs once.
        unsafe {
            let _ = close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readable_after_a_write() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        epoll.add(b.as_raw_fd(), EPOLLIN, 42).expect("add");
        let mut events = [EpollEvent::default(); 8];

        // Nothing written yet: a zero-timeout wait reports nothing.
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);

        (&a).write_all(b"x").expect("write");
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);
    }

    #[test]
    fn modify_and_delete_change_interest() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        epoll.add(b.as_raw_fd(), EPOLLIN, 1).expect("add");
        (&a).write_all(b"x").expect("write");

        // Re-token and confirm the new token comes back.
        epoll.modify(b.as_raw_fd(), EPOLLIN, 2).expect("modify");
        let mut events = [EpollEvent::default(); 8];
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 2);

        // After delete the readable socket no longer reports.
        epoll.delete(b.as_raw_fd()).expect("delete");
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);
    }

    #[test]
    fn double_add_is_an_error() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (_a, b) = UnixStream::pair().expect("socketpair");
        epoll.add(b.as_raw_fd(), EPOLLIN, 1).expect("add");
        assert!(epoll.add(b.as_raw_fd(), EPOLLIN, 1).is_err());
    }

    #[test]
    fn sockaddr_round_trips_both_families() {
        for addr in ["127.0.0.1:11311", "[::1]:11311"] {
            let addr: std::net::SocketAddr = addr.parse().expect("addr");
            let mut buf = [0u8; SOCKADDR_BUF];
            encode_sockaddr(addr, &mut buf);
            assert_eq!(decode_sockaddr(&buf), Some(addr));
        }
        let garbage = [0xffu8; SOCKADDR_BUF];
        assert_eq!(decode_sockaddr(&garbage), None);
    }

    #[test]
    fn reuseport_listeners_share_a_port_and_accept() {
        use std::io::Read;

        let first = ReusePortListener::bind("127.0.0.1:0".parse().expect("addr")).expect("bind");
        let addr = first.local_addr();
        assert_ne!(addr.port(), 0);
        let second = ReusePortListener::bind(addr).expect("sibling bind");
        assert_eq!(second.local_addr(), addr);

        // Empty accept queues report None, not an error.
        assert!(first.accept().expect("accept").is_none());

        // A connection lands on exactly one of the two listeners.
        let epoll = Epoll::new().expect("epoll");
        epoll.add(first.as_raw_fd(), EPOLLIN, 1).expect("add");
        epoll.add(second.as_raw_fd(), EPOLLIN, 2).expect("add");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let mut events = [EpollEvent::default(); 8];
        let n = epoll.wait(&mut events, 2000).expect("wait");
        assert!(n >= 1, "no listener became readable");
        let ready = if events[0].token() == 1 {
            &first
        } else {
            &second
        };
        let accepted = ready.accept().expect("accept").expect("one pending");
        // The accepted socket is nonblocking, as accept4 was told.
        client.write_all(b"ping").expect("write");
        drop(client);
        let mut n = 0;
        let mut buf = [0u8; 8];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while n < 4 && std::time::Instant::now() < deadline {
            match (&accepted).read(&mut buf[n..]) {
                Ok(read) => n += read,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(err) => panic!("read: {err}"),
            }
        }
        assert_eq!(&buf[..4], b"ping");
    }
}
