//! A binary buddy allocator — the alternative space manager of §5.
//!
//! The paper notes that slab calcification can be avoided "by separating
//! how memory should be allocated for the key-value pairs from the online
//! algorithm that decides which key-value pairs should occupy the available
//! memory. For example, with a memcached implementation, one may use a
//! buddy algorithm to manage space in combination with CAMP (or LRU)."
//!
//! This is that allocator: one contiguous arena split into power-of-two
//! blocks; freed buddies coalesce, so memory never calcifies into a class
//! — at the price of up-to-2× internal fragmentation per allocation. The
//! `slab` Criterion bench and the allocator property tests compare the two
//! regimes directly.

use std::fmt;

/// A handle to one buddy-allocated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRef {
    offset: u32,
    order: u8,
}

impl BlockRef {
    /// Byte offset of the block within the arena.
    #[must_use]
    pub fn offset(self) -> u32 {
        self.offset
    }

    /// The block's order: its size is `min_block << order`.
    #[must_use]
    pub fn order(self) -> u8 {
        self.order
    }
}

/// Why a buddy allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuddyError {
    /// The request exceeds the whole arena.
    ItemTooLarge {
        /// Requested bytes.
        requested: u32,
        /// Largest possible block.
        max: u32,
    },
    /// No free block of sufficient size — evict and retry.
    NoMemory,
}

impl fmt::Display for BuddyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BuddyError::ItemTooLarge { requested, max } => {
                write!(f, "item of {requested} bytes exceeds the arena block {max}")
            }
            BuddyError::NoMemory => f.write_str("no free buddy block of sufficient size"),
        }
    }
}

impl std::error::Error for BuddyError {}

/// The buddy allocator over a real byte arena.
///
/// # Examples
///
/// ```
/// use camp_kvs::buddy::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(1 << 16, 64);
/// let block = buddy.allocate(100)?;
/// buddy.write(block, b"hello");
/// assert_eq!(&buddy.read(block)[..5], b"hello");
/// buddy.free(block);
/// # Ok::<(), camp_kvs::buddy::BuddyError>(())
/// ```
pub struct BuddyAllocator {
    data: Box<[u8]>,
    min_block: u32,
    max_order: u8,
    /// Free lists per order: offsets of free blocks.
    free: Vec<Vec<u32>>,
    /// Allocation bitmap per (order, index) pair for buddy-state checks,
    /// flattened: `allocated[order][index]`.
    allocated: Vec<Vec<bool>>,
    live_blocks: usize,
    live_bytes: u64,
}

impl fmt::Debug for BuddyAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuddyAllocator")
            .field("arena", &self.data.len())
            .field("min_block", &self.min_block)
            .field("max_order", &self.max_order)
            .field("live_blocks", &self.live_blocks)
            .field("live_bytes", &self.live_bytes)
            .finish()
    }
}

impl BuddyAllocator {
    /// Creates an allocator over an arena of `arena_size` bytes with the
    /// given minimum block size. Both are rounded up to powers of two.
    ///
    /// # Panics
    ///
    /// Panics if `min_block` is zero or exceeds the arena.
    #[must_use]
    pub fn new(arena_size: u32, min_block: u32) -> Self {
        assert!(min_block > 0, "minimum block must be positive");
        let min_block = min_block.next_power_of_two();
        let arena_size = arena_size.next_power_of_two();
        assert!(min_block <= arena_size, "minimum block exceeds the arena");
        let max_order = (arena_size / min_block).trailing_zeros() as u8;
        let mut free: Vec<Vec<u32>> = (0..=max_order).map(|_| Vec::new()).collect();
        free[max_order as usize].push(0);
        let allocated = (0..=max_order)
            .map(|order| {
                vec![
                    false;
                    (arena_size >> (order + min_block.trailing_zeros() as u8) as u32).max(1)
                        as usize
                ]
            })
            .collect();
        BuddyAllocator {
            data: vec![0u8; arena_size as usize].into_boxed_slice(),
            min_block,
            max_order,
            free,
            allocated,
            live_blocks: 0,
            live_bytes: 0,
        }
    }

    /// The arena size in bytes.
    #[must_use]
    pub fn arena_size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Bytes currently handed out (block-granular, includes internal
    /// fragmentation).
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of live blocks.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.live_blocks
    }

    /// The block size of a given order.
    #[must_use]
    pub fn block_size(&self, order: u8) -> u32 {
        self.min_block << order
    }

    fn order_for(&self, size: u32) -> Result<u8, BuddyError> {
        let needed = size.max(1).next_power_of_two().max(self.min_block);
        let max = self.block_size(self.max_order);
        if needed > max {
            return Err(BuddyError::ItemTooLarge {
                requested: size,
                max,
            });
        }
        Ok((needed / self.min_block).trailing_zeros() as u8)
    }

    fn index_of(&self, offset: u32, order: u8) -> usize {
        (offset / self.block_size(order)) as usize
    }

    /// Allocates a block of at least `size` bytes.
    ///
    /// # Errors
    ///
    /// [`BuddyError::ItemTooLarge`] or [`BuddyError::NoMemory`].
    pub fn allocate(&mut self, size: u32) -> Result<BlockRef, BuddyError> {
        let order = self.order_for(size)?;
        // Find the smallest order >= `order` with a free block.
        let mut found = None;
        for o in order..=self.max_order {
            if !self.free[o as usize].is_empty() {
                found = Some(o);
                break;
            }
        }
        let Some(mut o) = found else {
            return Err(BuddyError::NoMemory);
        };
        // lint:allow(unwrap-in-lib) — the search above selected `o` because
        // its free list is non-empty.
        let offset = self.free[o as usize].pop().expect("non-empty free list");
        // Split down to the requested order, keeping the lower half each
        // time and returning the upper buddy to its free list.
        while o > order {
            o -= 1;
            let buddy = offset + self.block_size(o);
            self.free[o as usize].push(buddy);
        }
        let index = self.index_of(offset, order);
        debug_assert!(!self.allocated[order as usize][index], "double allocate");
        self.allocated[order as usize][index] = true;
        self.live_blocks += 1;
        self.live_bytes += u64::from(self.block_size(order));
        Ok(BlockRef { offset, order })
    }

    /// Frees a block, coalescing with its buddy as far as possible.
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free(&mut self, block: BlockRef) {
        let mut order = block.order;
        let mut offset = block.offset;
        {
            let index = self.index_of(offset, order);
            assert!(
                self.allocated[order as usize][index],
                "double free at offset {offset} order {order}"
            );
            self.allocated[order as usize][index] = false;
        }
        self.live_blocks -= 1;
        self.live_bytes -= u64::from(self.block_size(order));
        // Coalesce while the buddy is free.
        while order < self.max_order {
            let size = self.block_size(order);
            let buddy = offset ^ size;
            let free_list = &mut self.free[order as usize];
            if let Some(pos) = free_list.iter().position(|&b| b == buddy) {
                free_list.swap_remove(pos);
                offset = offset.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free[order as usize].push(offset);
    }

    /// Writes `bytes` into a block.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the block size.
    pub fn write(&mut self, block: BlockRef, bytes: &[u8]) {
        let size = self.block_size(block.order) as usize;
        assert!(bytes.len() <= size, "write exceeds block size");
        let offset = block.offset as usize;
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads a block's full contents.
    #[must_use]
    pub fn read(&self, block: BlockRef) -> &[u8] {
        let size = self.block_size(block.order) as usize;
        let offset = block.offset as usize;
        &self.data[offset..offset + size]
    }

    #[cfg(test)]
    fn total_free_bytes(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .map(|(order, list)| list.len() as u64 * u64::from(self.block_size(order as u8)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_free_roundtrip() {
        let mut buddy = BuddyAllocator::new(4096, 64);
        let a = buddy.allocate(100).unwrap();
        assert_eq!(buddy.block_size(a.order()), 128);
        buddy.write(a, b"abcd");
        assert_eq!(&buddy.read(a)[..4], b"abcd");
        buddy.free(a);
        assert_eq!(buddy.live_blocks(), 0);
        assert_eq!(buddy.total_free_bytes(), 4096);
    }

    #[test]
    fn splits_and_coalesces() {
        let mut buddy = BuddyAllocator::new(1024, 64);
        let blocks: Vec<BlockRef> = (0..16).map(|_| buddy.allocate(64).unwrap()).collect();
        assert_eq!(buddy.live_bytes(), 1024);
        assert!(matches!(buddy.allocate(64), Err(BuddyError::NoMemory)));
        for b in blocks {
            buddy.free(b);
        }
        // Everything coalesced back into one max-order block.
        assert_eq!(buddy.total_free_bytes(), 1024);
        let whole = buddy.allocate(1024).unwrap();
        assert_eq!(buddy.block_size(whole.order()), 1024);
    }

    #[test]
    fn no_calcification_across_size_classes() {
        // The property slabs lack: fill with small blocks, free them, and
        // immediately serve a large block from the same memory.
        let mut buddy = BuddyAllocator::new(4096, 64);
        let smalls: Vec<BlockRef> = (0..64).map(|_| buddy.allocate(64).unwrap()).collect();
        assert!(matches!(buddy.allocate(2048), Err(BuddyError::NoMemory)));
        for b in smalls {
            buddy.free(b);
        }
        assert!(buddy.allocate(2048).is_ok(), "memory must not calcify");
    }

    #[test]
    fn rejects_oversized() {
        let mut buddy = BuddyAllocator::new(1024, 64);
        assert!(matches!(
            buddy.allocate(2048),
            Err(BuddyError::ItemTooLarge { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut buddy = BuddyAllocator::new(1024, 64);
        let a = buddy.allocate(64).unwrap();
        buddy.free(a);
        buddy.free(a);
    }

    #[test]
    fn mixed_sizes_share_the_arena() {
        let mut buddy = BuddyAllocator::new(4096, 64);
        let a = buddy.allocate(1000).unwrap(); // 1024 block
        let b = buddy.allocate(500).unwrap(); // 512 block
        let c = buddy.allocate(64).unwrap();
        buddy.write(a, &[1u8; 1000]);
        buddy.write(b, &[2u8; 500]);
        buddy.write(c, &[3u8; 64]);
        assert_eq!(buddy.read(a)[999], 1);
        assert_eq!(buddy.read(b)[499], 2);
        assert_eq!(buddy.read(c)[63], 3);
        buddy.free(b);
        let d = buddy.allocate(400).unwrap();
        buddy.write(d, &[4u8; 400]);
        assert_eq!(buddy.read(a)[999], 1, "other blocks untouched");
        buddy.free(a);
        buddy.free(c);
        buddy.free(d);
        assert_eq!(buddy.total_free_bytes(), 4096);
    }

    #[test]
    fn randomized_churn_conserves_memory() {
        let mut buddy = BuddyAllocator::new(1 << 16, 64);
        let mut live: Vec<BlockRef> = Vec::new();
        let mut state = 7u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state.is_multiple_of(3) && !live.is_empty() {
                let idx = (state % live.len() as u64) as usize;
                buddy.free(live.swap_remove(idx));
            } else {
                let size = 64 + (state % 2000) as u32;
                if let Ok(block) = buddy.allocate(size) {
                    live.push(block);
                }
            }
            let block_bytes: u64 = live
                .iter()
                .map(|b| u64::from(buddy.block_size(b.order())))
                .sum();
            assert_eq!(buddy.live_bytes(), block_bytes);
            assert_eq!(
                buddy.live_bytes() + buddy.total_free_bytes(),
                1 << 16,
                "bytes must be conserved"
            );
        }
        for b in live {
            buddy.free(b);
        }
        assert_eq!(buddy.total_free_bytes(), 1 << 16);
    }
}
